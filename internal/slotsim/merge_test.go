package slotsim

import (
	"fmt"
	"sync"
	"testing"

	"streamcast/internal/core"
	"streamcast/internal/obs"
)

// mergeDriver builds a bare parallel driver around an observer, with k
// shard staging buffers ready to be filled by hand.
func mergeDriver(rec obs.Observer, k int) *parallelDriver {
	sc := &scratch{}
	sc.shards.staged = make([][]shardedDeliver, k)
	return &parallelDriver{
		engine:  &engine{obs: rec, sc: sc},
		workers: k,
	}
}

// stagedTx fabricates a staged delivery whose transmission encodes the
// arrival index, so the replayed order is checkable from the event stream.
func stagedTx(idx int, dup bool) shardedDeliver {
	return shardedDeliver{idx: idx, tx: core.Transmission{From: 0, To: 1, Packet: core.Packet(idx)}, dup: dup}
}

// checkMerged asserts the recorded events are exactly the deliveries
// 0..count-1 in ascending index order.
func checkMerged(t *testing.T, rec *obs.Recorder, count int) {
	t.Helper()
	if len(rec.Events) != count {
		t.Fatalf("merged %d events, want %d", len(rec.Events), count)
	}
	for i, ev := range rec.Events {
		if ev.Kind != obs.KindDeliver {
			t.Fatalf("event %d: kind %v, want deliver", i, ev.Kind)
		}
		if int(ev.Tx.Packet) != i {
			t.Fatalf("event %d: merged index %d out of order", i, ev.Tx.Packet)
		}
	}
}

// TestMergeStagedSkewed drives the heap merge across shard distributions
// the linear-scan merge handled worst: one shard holding nearly all of a
// slot's events, with a sprinkle of events owned by the other shards.
func TestMergeStagedSkewed(t *testing.T) {
	const workers, events = 8, 1000
	rec := &obs.Recorder{}
	p := mergeDriver(rec, workers)
	staged := p.sc.shards.staged
	for i := 0; i < events; i++ {
		w := 2 // the dominating shard
		if i%100 == 0 {
			w = (i / 100) % workers
		}
		staged[w] = append(staged[w], stagedTx(i, i%7 == 3))
	}
	p.mergeStaged(5, events)
	checkMerged(t, rec, events)
	for i, ev := range rec.Events {
		if ev.Dup != (i%7 == 3) {
			t.Fatalf("event %d: dup flag %v lost in the merge", i, ev.Dup)
		}
	}
}

// TestMergeStagedSingleShard is the extreme skew: every event in one shard,
// every other cursor empty from the first heap pop on.
func TestMergeStagedSingleShard(t *testing.T) {
	const workers, events = 7, 256
	rec := &obs.Recorder{}
	p := mergeDriver(rec, workers)
	for i := 0; i < events; i++ {
		p.sc.shards.staged[3] = append(p.sc.shards.staged[3], stagedTx(i, false))
	}
	p.mergeStaged(0, events)
	checkMerged(t, rec, events)
}

// TestMergeStagedLimit truncates the replay at the violation index: the
// merge must emit exactly the indexes below the limit and nothing after,
// even when the cut lands mid-shard.
func TestMergeStagedLimit(t *testing.T) {
	const workers, events, limit = 4, 200, 137
	rec := &obs.Recorder{}
	p := mergeDriver(rec, workers)
	for i := 0; i < events; i++ {
		w := i % workers
		p.sc.shards.staged[w] = append(p.sc.shards.staged[w], stagedTx(i, false))
	}
	p.mergeStaged(9, limit)
	checkMerged(t, rec, limit)
}

// TestMergeStagedEmpty: no staged events, no observer calls, no panic.
func TestMergeStagedEmpty(t *testing.T) {
	rec := &obs.Recorder{}
	p := mergeDriver(rec, 5)
	p.mergeStaged(0, 100)
	if len(rec.Events) != 0 {
		t.Fatalf("merged %d events from empty staging", len(rec.Events))
	}
}

// TestFirstErrorSmallestWins hammers the atomic fast-path from several
// goroutines: whatever the interleaving, the violation with the smallest
// transmission index must be the one reported. Run under `make race` this
// also proves the CAS/mutex pairing publishes idx and err safely.
func TestFirstErrorSmallestWins(t *testing.T) {
	const reports, goroutines = 64, 4
	errs := make([]error, reports)
	for i := range errs {
		errs[i] = fmt.Errorf("violation at %d", i)
	}
	for round := 0; round < 25; round++ {
		var f firstError
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Each goroutine reports its stripe in descending order, so
				// the winning minimum arrives last on every stripe.
				for i := reports - goroutines + g; i >= 0; i -= goroutines {
					f.report(i, errs[i])
				}
			}(g)
		}
		wg.Wait()
		if !f.failed() {
			t.Fatal("no violation recorded")
		}
		if f.idx != 0 || f.err != errs[0] {
			t.Fatalf("round %d: recorded idx=%d err=%v, want the smallest index 0", round, f.idx, f.err)
		}
		if !f.doomedAt(0) || !f.doomedAt(17) {
			t.Fatal("doomedAt must hold at and above the recorded index")
		}
		f.reset()
		if f.failed() || f.doomedAt(reports) {
			t.Fatal("reset did not clear the recorded violation")
		}
	}
}

// TestFirstErrorDoomedAt pins the break-safety predicate: a worker may only
// abandon arrivals at positions where the recorded minimum is already at or
// below its own index.
func TestFirstErrorDoomedAt(t *testing.T) {
	var f firstError
	if f.doomedAt(0) {
		t.Fatal("clean slot reads as doomed")
	}
	f.report(40, fmt.Errorf("later"))
	if f.doomedAt(39) {
		t.Fatal("doomed below the recorded index: events before it would be lost")
	}
	if !f.doomedAt(40) || !f.doomedAt(41) {
		t.Fatal("not doomed at/after the recorded index")
	}
	f.report(10, fmt.Errorf("earlier"))
	if f.idx != 10 {
		t.Fatalf("idx=%d after a smaller report, want 10", f.idx)
	}
	f.report(25, fmt.Errorf("in between"))
	if f.idx != 10 {
		t.Fatalf("idx=%d after a larger report, want 10 preserved", f.idx)
	}
}

// TestShardPlan pins the shard geometry: cache-line aligned chunks, no
// zero-width shards, full coverage.
func TestShardPlan(t *testing.T) {
	for _, tc := range []struct{ nodes, workers, chunk, eff int }{
		{1, 4, 64, 1},
		{64, 1, 64, 1},
		{65, 2, 64, 2},
		{201, 2, 128, 2},
		{1025, 4, 320, 4},
		{100001, 7, 14336, 7},
	} {
		chunk, eff := shardPlan(tc.nodes, tc.workers)
		if chunk != tc.chunk || eff != tc.eff {
			t.Errorf("shardPlan(%d, %d) = (%d, %d), want (%d, %d)",
				tc.nodes, tc.workers, chunk, eff, tc.chunk, tc.eff)
		}
		if chunk%shardAlign != 0 {
			t.Errorf("shardPlan(%d, %d): chunk %d not cache-line aligned", tc.nodes, tc.workers, chunk)
		}
		if (eff-1)*chunk >= tc.nodes || eff*chunk < tc.nodes {
			t.Errorf("shardPlan(%d, %d): %d shards of %d do not tile the id space", tc.nodes, tc.workers, eff, chunk)
		}
	}
}
