package slotsim

import (
	"strings"
	"testing"

	"streamcast/internal/core"
)

// TestLatencyBelowOneRejected: a LatencyFunc returning zero or a negative
// value is a configuration error, not a schedule violation — both engines
// must fail fast with a clear message instead of corrupting the in-flight
// bookkeeping (a latency of 0 would deliver a packet one slot before it was
// sent).
func TestLatencyBelowOneRejected(t *testing.T) {
	for _, bad := range []core.Slot{0, -2} {
		s := &stubScheme{n: 2, srcCap: 1, slots: map[core.Slot][]core.Transmission{
			0: {tx(0, 1, 0)},
		}}
		opt := Options{
			Slots: 2, Packets: 1,
			Latency: func(from, to core.NodeID) core.Slot { return bad },
		}
		for name, run := range map[string]func() (*Result, error){
			"Run":         func() (*Result, error) { return Run(s, opt) },
			"RunParallel": func() (*Result, error) { return RunParallel(s, opt, 2) },
		} {
			_, err := run()
			if err == nil {
				t.Fatalf("%s with latency %d: no error", name, bad)
			}
			if !strings.Contains(err.Error(), "at least 1") {
				t.Errorf("%s with latency %d: error %q does not explain the constraint", name, bad, err)
			}
		}
	}
}
