//go:build race

package slotsim_test

// raceEnabled gates the largest test cases: under the race detector they
// would dominate the suite without adding coverage beyond the mid-size runs.
const raceEnabled = true
