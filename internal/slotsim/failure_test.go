package slotsim

import (
	"testing"

	"streamcast/internal/core"
)

// TestDropCreatesMissing: a dropped transmission leaves a hole that
// AllowIncomplete reports.
func TestDropCreatesMissing(t *testing.T) {
	s := &stubScheme{n: 1, srcCap: 1, slots: map[core.Slot][]core.Transmission{
		0: {tx(0, 1, 0)},
		1: {tx(0, 1, 1)},
		2: {tx(0, 1, 2)},
	}}
	drop := func(x core.Transmission, at core.Slot) bool { return x.Packet == 1 }
	res, err := Run(s, Options{Slots: 3, Packets: 3, Drop: drop, AllowIncomplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing[1] != 1 {
		t.Errorf("missing %d, want 1", res.Missing[1])
	}
	// Packets 0 and 2 arrived on time: start delay 0, one hiccup (packet 1).
	if res.StartDelay[1] != 0 {
		t.Errorf("start %d, want 0", res.StartDelay[1])
	}
	if got := res.Hiccups(1, res.StartDelay[1]); got != 1 {
		t.Errorf("hiccups %d, want 1", got)
	}
	// Without AllowIncomplete the same run errors out.
	if _, err := Run(s, Options{Slots: 3, Packets: 3, Drop: drop}); err == nil {
		t.Error("incomplete run accepted without AllowIncomplete")
	}
}

// TestLossCascade: when a relay never received its packet, SkipUnavailable
// cascades the loss instead of flagging a violation.
func TestLossCascade(t *testing.T) {
	// S -> 1 -> 2 chain; the S->1 copy of packet 0 is lost.
	s := &stubScheme{n: 2, srcCap: 1, slots: map[core.Slot][]core.Transmission{}}
	for u := core.Slot(0); u < 6; u++ {
		s.slots[u] = append(s.slots[u], tx(0, 1, core.Packet(u)))
		if u >= 1 {
			s.slots[u] = append(s.slots[u], tx(1, 2, core.Packet(u-1)))
		}
	}
	drop := func(x core.Transmission, at core.Slot) bool {
		return x.From == 0 && x.Packet == 0
	}
	res, err := Run(s, Options{
		Slots: 6, Packets: 4,
		Drop: drop, AllowIncomplete: true, SkipUnavailable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes miss exactly packet 0; later packets flow normally.
	for id := 1; id <= 2; id++ {
		if res.Missing[id] != 1 {
			t.Errorf("node %d missing %d, want 1", id, res.Missing[id])
		}
		if res.Arrival[id][1] == -1 || res.Arrival[id][3] == -1 {
			t.Errorf("node %d lost packets beyond the injected one", id)
		}
	}
}

// TestHiccupsCounting checks the helper against a fixed start.
func TestHiccupsCounting(t *testing.T) {
	s := &stubScheme{n: 1, srcCap: 1, slots: map[core.Slot][]core.Transmission{
		0: {tx(0, 1, 0)},
		3: {tx(0, 1, 1)}, // 2 slots late for start=0
		4: {tx(0, 1, 2)},
	}}
	res, err := Run(s, Options{Slots: 5, Packets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hiccups(1, 0); got != 2 {
		t.Errorf("hiccups at start 0: %d, want 2", got)
	}
	if got := res.Hiccups(1, 2); got != 0 {
		t.Errorf("hiccups at start 2: %d, want 0", got)
	}
}
