package slotsim

import (
	"streamcast/internal/core"
	"streamcast/internal/obs"
)

// BuildReport assembles the machine-readable run report from a finished
// run: the scheme identity and schedule fingerprint, the engine options,
// the aggregate QoS numbers of the Result, and the per-slot time-series
// collected by the Metrics observer (which must have been attached to the
// run via Options.Observer). workers is 0 for the sequential engine.
func BuildReport(s core.Scheme, opt Options, res *Result, m *obs.Metrics, workers int) *obs.RunReport {
	rep := &obs.RunReport{
		Scheme:      s.Name(),
		Receivers:   res.N,
		Fingerprint: m.Fingerprint(),
		Options: obs.ReportOptions{
			Slots:           int(opt.Slots),
			Packets:         int(opt.Packets),
			Mode:            opt.Mode.String(),
			Workers:         workers,
			AllowDuplicates: opt.AllowDuplicates,
			AllowIncomplete: opt.AllowIncomplete,
			SkipUnavailable: opt.SkipUnavailable,
		},
		Latency: obs.NewLatencyReport(m.Latency()),
	}

	tot := m.Totals()
	missing := 0
	for _, v := range res.Missing {
		missing += v
	}
	rep.Aggregates = obs.Aggregates{
		WorstDelaySlots: int(res.WorstStartDelay()),
		AvgDelaySlots:   res.AvgStartDelay(),
		WorstBufferPkts: res.WorstBuffer(),
		SlotsUsed:       int(res.SlotsUsed),
		MissingPackets:  missing,
		Scheduled:       tot.Scheduled,
		Transmissions:   tot.Transmits,
		Deliveries:      tot.Delivers,
		Duplicates:      tot.Duplicates,
		Drops:           tot.Drops,
	}

	series := m.SlotSeries()
	rep.Series = obs.Series{
		Scheduled: make([]int, len(series)),
		Transmits: make([]int, len(series)),
		Delivers:  make([]int, len(series)),
		InFlight:  make([]int, len(series)),
	}
	drops := 0
	for i, sc := range series {
		rep.Series.Scheduled[i] = sc.Scheduled
		rep.Series.Transmits[i] = sc.Transmits
		rep.Series.Delivers[i] = sc.Delivers
		rep.Series.InFlight[i] = sc.InFlight
		drops += sc.Drops
	}
	if drops > 0 {
		rep.Series.Drops = make([]int, len(series))
		for i, sc := range series {
			rep.Series.Drops[i] = sc.Drops
		}
	}

	// Buffer-occupancy trajectories, derived from the observed arrivals
	// under the Result's playback starts; the per-node maximum of these
	// series is exactly Result.MaxBuffer.
	occ := m.OccupancySeries(res.StartDelay, res.Packets)
	slots := 0
	for _, row := range occ {
		if len(row) > slots {
			slots = len(row)
		}
	}
	rep.Series.BufferMax = make([]int, slots)
	rep.Series.BufferTotal = make([]int, slots)
	for id := 1; id < len(occ) && id <= res.N; id++ {
		for t, v := range occ[id] {
			rep.Series.BufferTotal[t] += v
			if v > rep.Series.BufferMax[t] {
				rep.Series.BufferMax[t] = v
			}
		}
	}

	rep.PerNode = obs.PerNode{
		StartDelay: make([]int, res.N+1),
		MaxBuffer:  make([]int, res.N+1),
	}
	for id := 0; id <= res.N; id++ {
		rep.PerNode.StartDelay[id] = int(res.StartDelay[id])
		rep.PerNode.MaxBuffer[id] = res.MaxBuffer[id]
	}
	if missing > 0 {
		rep.PerNode.Missing = append([]int(nil), res.Missing...)
	}
	return rep
}
