package slotsim

import (
	"fmt"

	"streamcast/internal/core"
	"streamcast/internal/obs"
)

// unset marks a packet that has not yet arrived at a node.
const unset core.Slot = -1

// CapacityFunc returns a per-node, per-slot capacity.
type CapacityFunc func(id core.NodeID) int

// LatencyFunc returns the number of slots a transmission from one node to
// another occupies. It must return at least 1. A packet sent in slot t with
// latency L is available at the receiver from slot t+L onward (it arrives at
// the end of slot t+L-1).
type LatencyFunc func(from, to core.NodeID) core.Slot

// Options configures a simulation run.
type Options struct {
	// Slots is the number of time slots to simulate.
	Slots core.Slot
	// Packets is the measurement window: metrics are computed over packets
	// 0..Packets-1 and the run fails unless every receiver has received all
	// of them within Slots.
	Packets core.Packet
	// Mode is the data-availability assumption at the source. In Live mode
	// the source may not transmit packet p before slot p.
	Mode core.StreamMode
	// SendCap overrides per-node send capacity. If nil, the source uses
	// the scheme's SourceCapacity and every receiver uses 1.
	SendCap CapacityFunc
	// RecvCap overrides per-node receive capacity. If nil, every node
	// uses 1.
	RecvCap CapacityFunc
	// Latency overrides per-link latency. If nil, every link takes 1 slot.
	// A returned latency below 1 is a configuration error: the run aborts
	// with a descriptive error at the first transmission that uses the
	// offending link.
	Latency LatencyFunc
	// Observer, if non-nil, receives per-slot event callbacks (slot
	// boundaries, transmissions, deliveries, drops, violations) from both
	// Run and RunParallel, in an identical, deterministic order. A nil
	// Observer costs nothing beyond one pointer check per event site.
	Observer obs.Observer
	// AllowDuplicates, if set, tolerates a node receiving the same packet
	// twice (the duplicate is dropped but still consumes receive capacity).
	// By default a duplicate is a constraint violation.
	AllowDuplicates bool
	// Drop, if non-nil, is a failure-injection hook: a transmission for
	// which it returns true is validated and consumes send capacity but is
	// lost in flight (it never arrives). Use with AllowIncomplete.
	Drop func(tx core.Transmission, t core.Slot) bool
	// Inject, if non-nil, is the structured fault-injection hook (see
	// internal/faults): it is consulted once per validated transmission, in
	// schedule order, by both Run and RunParallel — the call sites sit in
	// the single-threaded routing step shared by the two engines, so a
	// deterministic Injector yields bit-identical faulted runs. DropTx
	// loses the transmission in flight exactly like Drop; DelayTx stretches
	// the link latency for that one transmission.
	Inject Injector
	// AllowIncomplete, if set, lets the run finish even when some node
	// missed some packet of the measurement window; missing packets are
	// reported in Result.Missing and excluded from StartDelay.
	AllowIncomplete bool
	// SkipUnavailable, if set, silently skips scheduled transmissions
	// whose sender does not hold the packet instead of flagging a
	// violation — the loss-cascade behaviour of a real protocol under
	// failure injection. Only sensible together with Drop.
	SkipUnavailable bool
	// ExtraSources marks additional node IDs that behave like sources:
	// they may transmit packets they never received (used by the cluster
	// simulator for super nodes is NOT needed — super nodes receive the
	// stream — but used in tests for standalone sub-schemes).
	ExtraSources map[core.NodeID]bool
}

// Injector is the engine's structured fault-injection hook. Both engines
// invoke it from the single-threaded per-slot routing step, in schedule
// order, so implementations need no locking; implementations whose verdicts
// are pure functions of (tx, t) make faulted runs replayable bit for bit.
// internal/faults provides the seeded, plan-driven implementation.
type Injector interface {
	// DropTx reports whether the validated transmission is lost in flight:
	// it consumes send capacity and produces a Drop observer event, but
	// never arrives.
	DropTx(tx core.Transmission, t core.Slot) bool
	// DelayTx returns extra slots added to the link latency of this one
	// transmission (0 = undisturbed). A negative value is a configuration
	// error and aborts the run.
	DelayTx(tx core.Transmission, t core.Slot) core.Slot
}

// A Violation describes a broken model constraint detected during execution.
type Violation struct {
	Slot core.Slot
	Kind string
	Tx   core.Transmission
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("slotsim: slot %d: %s (%s)", v.Slot, v.Kind, v.Tx)
}

// Result holds the measured QoS quantities of a run.
type Result struct {
	// N is the number of receivers.
	N int
	// Packets is the measurement window size.
	Packets core.Packet
	// Arrival[node][packet] is the slot at the end of which the packet was
	// received, or -1 if it never arrived. Arrival[0] is the source row and
	// is all -1.
	Arrival [][]core.Slot
	// StartDelay[node] is the earliest slot s at which the node can begin
	// playback and then consume one packet per slot without hiccups:
	// s = max_j (Arrival[node][j] - j) over the measurement window. Packet
	// j is consumed at the end of slot s+j; as in the paper's Figure 5, a
	// packet that arrives during a slot may be consumed at the end of that
	// same slot.
	StartDelay []core.Slot
	// MaxBuffer[node] is the peak number of packets simultaneously buffered
	// at the node, assuming playback starts at StartDelay[node] and a packet
	// leaves the buffer at the end of its playback slot.
	MaxBuffer []int
	// Missing[node] counts packets of the window that never arrived (only
	// non-zero under Options.AllowIncomplete).
	Missing []int
	// SlotsUsed is the last slot in which any measured packet arrived, +1.
	SlotsUsed core.Slot
}

// Hiccups counts the playback interruptions node id would suffer if it
// committed to starting playback at the given slot: packets that are
// missing entirely or arrive after their playback slot start+j.
func (r *Result) Hiccups(id core.NodeID, start core.Slot) int {
	n := 0
	for j, a := range r.Arrival[id] {
		if a == unset || a > start+core.Slot(j) {
			n++
		}
	}
	return n
}

// WorstStartDelay returns the maximum playback delay over all receivers.
func (r *Result) WorstStartDelay() core.Slot {
	var worst core.Slot
	for id := 1; id <= r.N; id++ {
		if d := r.StartDelay[id]; d > worst {
			worst = d
		}
	}
	return worst
}

// AvgStartDelay returns the mean playback delay over all receivers.
func (r *Result) AvgStartDelay() float64 {
	var sum float64
	for id := 1; id <= r.N; id++ {
		sum += float64(r.StartDelay[id])
	}
	return sum / float64(r.N)
}

// WorstBuffer returns the maximum buffer occupancy over all receivers.
func (r *Result) WorstBuffer() int {
	worst := 0
	for id := 1; id <= r.N; id++ {
		if b := r.MaxBuffer[id]; b > worst {
			worst = b
		}
	}
	return worst
}

// Run executes the scheme on the sequential engine. Each call draws an
// exclusively-owned Runner from an internal pool, so repeated runs reuse
// engine scratch memory and compiled schedules; hold an explicit Runner to
// control that reuse manually.
func Run(s core.Scheme, opt Options) (*Result, error) {
	return pooledRun(s, opt, false, 0)
}

// engine holds the mutable state of a run shared by the sequential and
// parallel drivers.
type engine struct {
	scheme  core.Scheme
	opt     Options
	n       int
	maxPkt  core.Packet // tracking bound for arrivals (window + slack)
	arrival [][]core.Slot
	sendCap CapacityFunc // custom only; nil when sendTab is active
	recvCap CapacityFunc // custom only; nil when recvTab is active
	latency LatencyFunc  // nil on the fast path (no latency, no injector)
	sendTab []int        // precomputed default send capacities
	recvTab []int        // precomputed default receive capacities
	// fast marks a run with no LatencyFunc and no Injector: every link takes
	// exactly 1 slot, so routing bypasses the inflight map entirely.
	fast bool
	// inflight[t] holds transmissions that arrive at the end of slot t,
	// keyed by absolute slot. nil on the fast path.
	inflight map[core.Slot][]core.Transmission
	sent     []int // scratch: per-sender count within the current slot
	received []int // scratch: per-receiver count within the arrival slot
	sc       *scratch
	obs      obs.Observer
}

// grownSlots returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers reset what they read.
func grownSlots(s []core.Slot, n int) []core.Slot {
	if cap(s) < n {
		return make([]core.Slot, n)
	}
	return s[:n]
}

func grownInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func newEngine(s core.Scheme, opt Options, sc *scratch) (*engine, error) {
	if opt.Slots <= 0 {
		return nil, fmt.Errorf("slotsim: Slots must be > 0, got %d", opt.Slots)
	}
	if opt.Packets <= 0 {
		return nil, fmt.Errorf("slotsim: Packets must be > 0, got %d", opt.Packets)
	}
	n := s.NumReceivers()
	if n < 1 {
		return nil, fmt.Errorf("slotsim: scheme has %d receivers", n)
	}
	srcCap := s.SourceCapacity()
	// Track arrivals for every packet the source could emit in the
	// simulated horizon, so availability checks work beyond the window.
	maxPkt := core.Packet(int(opt.Slots)*srcCap + srcCap)
	if maxPkt < opt.Packets {
		maxPkt = opt.Packets
	}
	sc.backing = grownSlots(sc.backing, (n+1)*int(maxPkt))
	backing := sc.backing
	for i := range backing {
		backing[i] = unset
	}
	if cap(sc.rows) < n+1 {
		sc.rows = make([][]core.Slot, n+1)
	}
	arrival := sc.rows[:n+1]
	for id := 0; id <= n; id++ {
		arrival[id] = backing[id*int(maxPkt) : (id+1)*int(maxPkt)]
	}
	sc.sent = grownInts(sc.sent, n+1)
	sc.received = grownInts(sc.received, n+1)
	fast := opt.Latency == nil && opt.Inject == nil
	sc.eng = engine{
		scheme:   s,
		opt:      opt,
		n:        n,
		maxPkt:   maxPkt,
		arrival:  arrival,
		fast:     fast,
		sent:     sc.sent,
		received: sc.received,
		sc:       sc,
		obs:      opt.Observer,
	}
	e := &sc.eng
	if opt.SendCap != nil {
		e.sendCap = opt.SendCap
	} else {
		sc.sendTab = grownInts(sc.sendTab, n+1)
		sc.sendTab[0] = srcCap
		for i := 1; i <= n; i++ {
			sc.sendTab[i] = 1
		}
		e.sendTab = sc.sendTab
	}
	if opt.RecvCap != nil {
		e.recvCap = opt.RecvCap
	} else {
		sc.recvTab = grownInts(sc.recvTab, n+1)
		for i := 0; i <= n; i++ {
			sc.recvTab[i] = 1
		}
		e.recvTab = sc.recvTab
	}
	if !fast {
		e.latency = opt.Latency
		if e.latency == nil {
			e.latency = func(core.NodeID, core.NodeID) core.Slot { return 1 }
		}
		e.inflight = make(map[core.Slot][]core.Transmission)
	}
	return e, nil
}

// sendCapOf returns the per-slot send capacity of a (range-checked) node.
func (e *engine) sendCapOf(id core.NodeID) int {
	if e.sendTab != nil {
		return e.sendTab[id]
	}
	return e.sendCap(id)
}

// recvCapOf returns the per-slot receive capacity of a (range-checked) node.
func (e *engine) recvCapOf(id core.NodeID) int {
	if e.recvTab != nil {
		return e.recvTab[id]
	}
	return e.recvCap(id)
}

// observeFail forwards a violation to the observer before the run aborts.
func (e *engine) observeFail(err error) error {
	if e.obs != nil {
		if v, ok := err.(*Violation); ok {
			e.obs.Violation(v.Slot, v.Kind, v.Tx)
		}
	}
	return err
}

// isSource reports whether the node originates packets without receiving
// them first.
func (e *engine) isSource(id core.NodeID) bool {
	return id == core.SourceID || e.opt.ExtraSources[id]
}

// holds reports whether the node can transmit packet p during slot t.
func (e *engine) holds(id core.NodeID, p core.Packet, t core.Slot) bool {
	if p < 0 {
		return false
	}
	if e.isSource(id) {
		if e.opt.Mode == core.Live {
			return core.Slot(int(p)) <= t
		}
		return true
	}
	if p >= e.maxPkt {
		return false
	}
	a := e.arrival[id][p]
	return a != unset && a < t
}

// validateSends checks sender-side constraints for the slot's transmissions.
func (e *engine) validateSends(t core.Slot, txs []core.Transmission) error {
	for i := range e.sent {
		e.sent[i] = 0
	}
	for _, tx := range txs {
		if tx.From < 0 || int(tx.From) > e.n || tx.To < 0 || int(tx.To) > e.n {
			return &Violation{t, "node id out of range", tx}
		}
		if tx.From == tx.To {
			return &Violation{t, "self transmission", tx}
		}
		e.sent[tx.From]++
		if e.sent[tx.From] > e.sendCapOf(tx.From) {
			return &Violation{t, "send capacity exceeded", tx}
		}
		if !e.holds(tx.From, tx.Packet, t) {
			return &Violation{t, "sender does not hold packet", tx}
		}
	}
	return nil
}

// deliver applies arrivals scheduled for the end of slot t.
func (e *engine) deliver(t core.Slot, arrivals []core.Transmission) error {
	for i := range e.received {
		e.received[i] = 0
	}
	for _, tx := range arrivals {
		e.received[tx.To]++
		if e.received[tx.To] > e.recvCapOf(tx.To) {
			return &Violation{t, "receive capacity exceeded", tx}
		}
		if e.isSource(tx.To) || tx.Packet >= e.maxPkt {
			// Sources discard incoming packets; packets beyond the
			// tracking horizon only count against capacity.
			if e.obs != nil {
				e.obs.Deliver(t, tx, false)
			}
			continue
		}
		if e.arrival[tx.To][tx.Packet] != unset {
			if !e.opt.AllowDuplicates {
				return &Violation{t, "duplicate packet", tx}
			}
			if e.obs != nil {
				e.obs.Deliver(t, tx, true)
			}
			continue
		}
		e.arrival[tx.To][tx.Packet] = t
		if e.obs != nil {
			e.obs.Deliver(t, tx, false)
		}
	}
	return nil
}

// filterUnavailable drops scheduled transmissions whose sender lacks the
// packet (loss cascading under SkipUnavailable).
func (e *engine) filterUnavailable(t core.Slot, txs []core.Transmission) []core.Transmission {
	if !e.opt.SkipUnavailable {
		return txs
	}
	kept := e.sc.filter[:0]
	for _, tx := range txs {
		if e.holds(tx.From, tx.Packet, t) {
			kept = append(kept, tx)
		}
	}
	e.sc.filter = kept
	return kept
}

// route assigns each validated transmission to its arrival slot, applying
// failure injection and link latency. Same-slot (latency 1) arrivals are
// appended to sameSlot and returned; later arrivals go to the inflight map.
// Shared by the sequential and parallel drivers.
func (e *engine) route(t core.Slot, txs []core.Transmission, sameSlot []core.Transmission) ([]core.Transmission, error) {
	for _, tx := range txs {
		if e.opt.Drop != nil && e.opt.Drop(tx, t) {
			if e.obs != nil {
				e.obs.Drop(t, tx)
			}
			continue // lost in flight; send capacity already spent
		}
		if e.fast {
			// No LatencyFunc and no Injector: every link takes one slot, so
			// the transmission arrives at the end of this very slot.
			if e.obs != nil {
				e.obs.Transmit(t, tx)
			}
			sameSlot = append(sameSlot, tx)
			continue
		}
		if e.opt.Inject != nil && e.opt.Inject.DropTx(tx, t) {
			if e.obs != nil {
				e.obs.Drop(t, tx)
			}
			continue // lost in flight; send capacity already spent
		}
		l := e.latency(tx.From, tx.To)
		if l < 1 {
			return nil, fmt.Errorf("slotsim: slot %d: Latency(%d, %d) returned %d for %s; LatencyFunc must return at least 1",
				t, tx.From, tx.To, l, tx)
		}
		if e.opt.Inject != nil {
			x := e.opt.Inject.DelayTx(tx, t)
			if x < 0 {
				return nil, fmt.Errorf("slotsim: slot %d: Inject.DelayTx returned %d for %s; extra delay must be >= 0",
					t, x, tx)
			}
			l += x
		}
		if e.obs != nil {
			e.obs.Transmit(t, tx)
		}
		if l == 1 {
			sameSlot = append(sameSlot, tx)
		} else {
			at := t + l - 1
			e.inflight[at] = append(e.inflight[at], tx)
		}
	}
	return sameSlot, nil
}

// step executes one slot on the sequential engine.
func (e *engine) step(t core.Slot, txs []core.Transmission) error {
	if e.obs != nil {
		e.obs.SlotStart(t, len(txs))
	}
	txs = e.filterUnavailable(t, txs)
	if err := e.validateSends(t, txs); err != nil {
		return e.observeFail(err)
	}
	sameSlot := e.pendingArrivals(t)
	sameSlot, err := e.route(t, txs, sameSlot)
	if err != nil {
		return err
	}
	e.sc.arrive = sameSlot // retain grown capacity for later slots
	if err := e.deliver(t, sameSlot); err != nil {
		return e.observeFail(err)
	}
	if e.obs != nil {
		e.obs.SlotEnd(t)
	}
	return nil
}

// pendingArrivals returns the slot's arrival list seeded with any in-flight
// transmissions due at t, built on the reusable arrival scratch buffer.
func (e *engine) pendingArrivals(t core.Slot) []core.Transmission {
	sameSlot := e.sc.arrive[:0]
	if e.inflight != nil {
		if pend := e.inflight[t]; len(pend) > 0 {
			sameSlot = append(sameSlot, pend...)
			delete(e.inflight, t)
		}
	}
	return sameSlot
}

// finish computes the Result after the last slot.
func (e *engine) finish() (*Result, error) {
	r := &Result{
		N:          e.n,
		Packets:    e.opt.Packets,
		Arrival:    make([][]core.Slot, e.n+1),
		StartDelay: make([]core.Slot, e.n+1),
		MaxBuffer:  make([]int, e.n+1),
		Missing:    make([]int, e.n+1),
	}
	// Copy arrival rows out of the reusable scratch backing: the Result must
	// stay valid after the Runner's buffers are recycled for the next run.
	np := int(e.opt.Packets)
	out := make([]core.Slot, (e.n+1)*np)
	for id := 0; id <= e.n; id++ {
		row := out[id*np : (id+1)*np : (id+1)*np]
		copy(row, e.arrival[id][:np])
		r.Arrival[id] = row
	}
	counts := grownInts(e.sc.counts, int(e.opt.Slots))
	e.sc.counts = counts
	for i := range counts {
		counts[i] = 0
	}
	for id := 1; id <= e.n; id++ {
		row := r.Arrival[id]
		var worst core.Slot = -1 << 30
		for j, a := range row {
			if a == unset {
				if !e.opt.AllowIncomplete {
					return nil, fmt.Errorf("slotsim: node %d never received packet %d within %d slots", id, j, e.opt.Slots)
				}
				r.Missing[id]++
				continue
			}
			if a > r.SlotsUsed {
				r.SlotsUsed = a
			}
			if lag := a - core.Slot(j); lag > worst {
				worst = lag
			}
		}
		if worst == -1<<30 {
			worst = 0 // nothing arrived at all
		}
		r.StartDelay[id] = worst
		r.MaxBuffer[id] = maxBuffer(row, r.StartDelay[id], counts)
	}
	r.SlotsUsed++
	return r, nil
}

// maxBuffer computes the peak buffer occupancy for one node: packet j
// occupies the buffer from the end of its arrival slot through the end of
// slot start+j (its playback slot), inclusive; a packet that arrives in its
// own playback slot is counted exactly once. Occupancy is sampled at the
// end of every slot, so a packet played during slot t still counts at the
// end of t; this matches the paper's "store 2 packets" accounting for the
// hypercube scheme (one being consumed plus one being disseminated).
//
// counts is a caller-owned scratch slice, all zero on entry and indexable by
// every arrival slot; maxBuffer re-zeroes each entry it touches, so the
// slice is all zero again on return and reusable for the next node.
func maxBuffer(arrival []core.Slot, start core.Slot, counts []int) int {
	var lastSlot core.Slot
	for _, a := range arrival {
		if a == unset {
			continue
		}
		counts[a]++
		if a > lastSlot {
			lastSlot = a
		}
	}
	peak, have := 0, 0
	for t := core.Slot(0); t <= lastSlot; t++ {
		have += counts[t]
		counts[t] = 0
		// Packets fully played (playback slot strictly before t) are gone.
		played := int(t - start)
		if played < 0 {
			played = 0
		}
		if played > len(arrival) {
			played = len(arrival)
		}
		if occ := have - played; occ > peak {
			peak = occ
		}
	}
	return peak
}
