package slotsim

import (
	"fmt"
	"math/bits"

	"streamcast/internal/core"
	"streamcast/internal/obs"
)

// unset marks a packet that has not yet arrived at a node.
const unset core.Slot = -1

// CapacityFunc returns a per-node, per-slot capacity.
type CapacityFunc func(id core.NodeID) int

// LatencyFunc returns the number of slots a transmission from one node to
// another occupies. It must return at least 1. A packet sent in slot t with
// latency L is available at the receiver from slot t+L onward (it arrives at
// the end of slot t+L-1).
type LatencyFunc func(from, to core.NodeID) core.Slot

// Options configures a simulation run.
type Options struct {
	// Slots is the number of time slots to simulate.
	Slots core.Slot
	// Packets is the measurement window: metrics are computed over packets
	// 0..Packets-1 and the run fails unless every receiver has received all
	// of them within Slots.
	Packets core.Packet
	// Mode is the data-availability assumption at the source. In Live mode
	// the source may not transmit packet p before slot p.
	Mode core.StreamMode
	// SendCap overrides per-node send capacity. If nil, the source uses
	// the scheme's SourceCapacity and every receiver uses 1.
	SendCap CapacityFunc
	// RecvCap overrides per-node receive capacity. If nil, every node
	// uses 1.
	RecvCap CapacityFunc
	// Latency overrides per-link latency. If nil, every link takes 1 slot.
	// A returned latency below 1 is a configuration error: the run aborts
	// with a descriptive error at the first transmission that uses the
	// offending link.
	Latency LatencyFunc
	// Observer, if non-nil, receives per-slot event callbacks (slot
	// boundaries, transmissions, deliveries, drops, violations) from both
	// Run and RunParallel, in an identical, deterministic order. A nil
	// Observer costs nothing beyond one pointer check per event site.
	Observer obs.Observer
	// AllowDuplicates, if set, tolerates a node receiving the same packet
	// twice (the duplicate is dropped but still consumes receive capacity).
	// By default a duplicate is a constraint violation.
	AllowDuplicates bool
	// Drop, if non-nil, is a failure-injection hook: a transmission for
	// which it returns true is validated and consumes send capacity but is
	// lost in flight (it never arrives). Use with AllowIncomplete.
	Drop func(tx core.Transmission, t core.Slot) bool
	// Inject, if non-nil, is the structured fault-injection hook (see
	// internal/faults): it is consulted once per validated transmission, in
	// schedule order, by both Run and RunParallel — the call sites sit in
	// the single-threaded routing step shared by the two engines, so a
	// deterministic Injector yields bit-identical faulted runs. DropTx
	// loses the transmission in flight exactly like Drop; DelayTx stretches
	// the link latency for that one transmission.
	Inject Injector
	// AllowIncomplete, if set, lets the run finish even when some node
	// missed some packet of the measurement window; missing packets are
	// reported in Result.Missing and excluded from StartDelay.
	AllowIncomplete bool
	// SkipUnavailable, if set, silently skips scheduled transmissions
	// whose sender does not hold the packet instead of flagging a
	// violation — the loss-cascade behaviour of a real protocol under
	// failure injection. Only sensible together with Drop.
	SkipUnavailable bool
	// Churn, if non-nil, makes the topology a live workload: the source is
	// consulted single-threaded at every slot barrier (before validate, by
	// both Run and RunParallel) and may apply join/leave ops to the scheme,
	// which must implement core.DynamicScheme. The engine pre-sizes its
	// struct-of-arrays state to Churn.MaxNodes() so the shard plan and the
	// arrival-matrix stride stay fixed across topology epochs, and requires
	// AllowIncomplete + SkipUnavailable (repair gaps cascade as measurable
	// losses). See internal/faults for the seeded, plan- and
	// generator-driven implementation.
	Churn ChurnSource
	// ExtraSources marks additional node IDs that behave like sources:
	// they may transmit packets they never received (used by the cluster
	// simulator for super nodes is NOT needed — super nodes receive the
	// stream — but used in tests for standalone sub-schemes). The engine
	// folds this map into a flat occupancy bitmap at run start; the
	// per-slot path never touches the map itself.
	ExtraSources map[core.NodeID]bool
}

// Injector is the engine's structured fault-injection hook. Both engines
// invoke it from the single-threaded per-slot routing step, in schedule
// order, so implementations need no locking; implementations whose verdicts
// are pure functions of (tx, t) make faulted runs replayable bit for bit.
// internal/faults provides the seeded, plan-driven implementation.
type Injector interface {
	// DropTx reports whether the validated transmission is lost in flight:
	// it consumes send capacity and produces a Drop observer event, but
	// never arrives.
	DropTx(tx core.Transmission, t core.Slot) bool
	// DelayTx returns extra slots added to the link latency of this one
	// transmission (0 = undisturbed). A negative value is a configuration
	// error and aborts the run.
	DelayTx(tx core.Transmission, t core.Slot) core.Slot
}

// A Violation describes a broken model constraint detected during execution.
type Violation struct {
	Slot core.Slot
	Kind string
	Tx   core.Transmission
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("slotsim: slot %d: %s (%s)", v.Slot, v.Kind, v.Tx)
}

// Result holds the measured QoS quantities of a run.
type Result struct {
	// N is the number of receivers.
	N int
	// Packets is the measurement window size.
	Packets core.Packet
	// Arrival[node][packet] is the slot at the end of which the packet was
	// received, or -1 if it never arrived. Arrival[0] is the source row and
	// is all -1.
	Arrival [][]core.Slot
	// StartDelay[node] is the earliest slot s at which the node can begin
	// playback and then consume one packet per slot without hiccups:
	// s = max_j (Arrival[node][j] - j) over the measurement window. Packet
	// j is consumed at the end of slot s+j; as in the paper's Figure 5, a
	// packet that arrives during a slot may be consumed at the end of that
	// same slot.
	StartDelay []core.Slot
	// MaxBuffer[node] is the peak number of packets simultaneously buffered
	// at the node, assuming playback starts at StartDelay[node] and a packet
	// leaves the buffer at the end of its playback slot.
	MaxBuffer []int
	// Missing[node] counts packets of the window that never arrived (only
	// non-zero under Options.AllowIncomplete).
	Missing []int
	// SlotsUsed is the last slot in which any measured packet arrived, +1.
	SlotsUsed core.Slot
}

// Hiccups counts the playback interruptions node id would suffer if it
// committed to starting playback at the given slot: packets that are
// missing entirely or arrive after their playback slot start+j.
func (r *Result) Hiccups(id core.NodeID, start core.Slot) int {
	n := 0
	for j, a := range r.Arrival[id] {
		if a == unset || a > start+core.Slot(j) {
			n++
		}
	}
	return n
}

// WorstStartDelay returns the maximum playback delay over all receivers.
func (r *Result) WorstStartDelay() core.Slot {
	var worst core.Slot
	for id := 1; id <= r.N; id++ {
		if d := r.StartDelay[id]; d > worst {
			worst = d
		}
	}
	return worst
}

// AvgStartDelay returns the mean playback delay over all receivers.
func (r *Result) AvgStartDelay() float64 {
	var sum float64
	for id := 1; id <= r.N; id++ {
		sum += float64(r.StartDelay[id])
	}
	return sum / float64(r.N)
}

// WorstBuffer returns the maximum buffer occupancy over all receivers.
func (r *Result) WorstBuffer() int {
	worst := 0
	for id := 1; id <= r.N; id++ {
		if b := r.MaxBuffer[id]; b > worst {
			worst = b
		}
	}
	return worst
}

// Run executes the scheme on the sequential engine. Each call draws an
// exclusively-owned Runner from an internal pool, so repeated runs reuse
// engine scratch memory and compiled schedules; hold an explicit Runner to
// control that reuse manually.
func Run(s core.Scheme, opt Options) (*Result, error) {
	return pooledRun(s, opt, false, 0)
}

// engine holds the mutable state of a run shared by the sequential and
// parallel drivers. All per-node state is struct-of-arrays (see soa.go and
// PERFORMANCE.md): flat arrays indexed by NodeID, with the arrival matrix
// flattened to one int32 array of stride maxPkt.
type engine struct {
	scheme core.Scheme
	opt    Options
	// dyn is the run's dynamic scheme view, set only on the churn path; the
	// churnStep barrier applies membership ops through it.
	dyn core.DynamicScheme
	n   int
	maxPkt core.Packet // tracking bound for arrivals (window + slack)
	stride int         // row stride of the flat arrival matrix (= n+1)
	// arr is the packed arrival matrix, packet-major: arr[p·stride+id] holds
	// the arrival slot + 1 of packet p at node id, or unset32 (0). Rows are
	// packets because a slot moves only a few distinct packets across many
	// nodes, so packet-major turns each slot's matrix traffic into
	// near-sequential walks of a handful of rows; node-major would make
	// every access a random probe at large N. Each write marks the packet's
	// bit in dirtyRows so the next run clears only the rows this run touched.
	arr       []int32
	dirtyRows []uint64     // bitmap of arrival-matrix (packet) rows written this run
	srcBits   []uint64     // occupancy bitmap of packet-originating node ids
	sendCap   CapacityFunc // custom only; nil when sendTab is active
	recvCap   CapacityFunc // custom only; nil when recvTab is active
	latency   LatencyFunc  // nil on the fast path (no latency, no injector)
	sendTab   []int32      // precomputed default send capacities
	recvTab   []int32      // precomputed default receive capacities
	// fast marks a run with no LatencyFunc and no Injector: every link takes
	// exactly 1 slot, so routing bypasses the in-flight ring entirely.
	fast bool
	// ring buffers in-flight transmissions by arrival slot. nil on the
	// fast path.
	ring *txRing
	// Epoch-stamped per-slot capacity counters, packed stamp<<32 | count:
	// an entry is only meaningful when its stamp equals the phase's tick, so
	// no per-slot O(N) clearing is needed, and packing the stamp with the
	// count makes each check-and-bump a single cache-line access.
	sentSt []uint64
	recvSt []uint64
	// Playback cursors packed worstLag<<32 | got, updated at delivery time
	// for window packets: worstLag is max (arrival − packet), the node's
	// playback delay; got counts distinct window packets received.
	cursor []uint64
	sc     *scratch
	obs    obs.Observer
}

// grownInts returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers reset what they read.
func grownInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func newEngine(s core.Scheme, opt Options, sc *scratch) (*engine, error) {
	if opt.Slots <= 0 {
		return nil, fmt.Errorf("slotsim: Slots must be > 0, got %d", opt.Slots)
	}
	if opt.Packets <= 0 {
		return nil, fmt.Errorf("slotsim: Packets must be > 0, got %d", opt.Packets)
	}
	n := s.NumReceivers()
	if n < 1 {
		return nil, fmt.Errorf("slotsim: scheme has %d receivers", n)
	}
	if opt.Churn != nil {
		// Pre-size every per-node array (and hence the shard plan) to the
		// largest id space churn may create, so joins never remap mid-run.
		// Ids beyond the initial population stay silent until assigned.
		if m := opt.Churn.MaxNodes(); m > n {
			n = m
		}
	}
	srcCap := s.SourceCapacity()
	// Track arrivals for every packet the source could emit in the
	// simulated horizon, so availability checks work beyond the window.
	maxPkt := core.Packet(int(opt.Slots)*srcCap + srcCap)
	if maxPkt < opt.Packets {
		maxPkt = opt.Packets
	}
	// Undo the previous run's arrival writes against the old backing, then
	// resize. A grown matrix is freshly allocated and therefore all-unset
	// (unset32 is the zero value); a reused one is made all-unset here by
	// clearing exactly the packet rows the dirty bitmap marks, each one
	// contiguous memclr of the previous run's row stride.
	need := (n + 1) * int(maxPkt)
	if cap(sc.arr) < need {
		// The matrix will be freshly allocated; just forget the old writes.
		clear(sc.dirtyRows)
	} else {
		for w, set := range sc.dirtyRows {
			if set == 0 {
				continue
			}
			sc.dirtyRows[w] = 0
			for set != 0 {
				p := w<<6 + bits.TrailingZeros64(set)
				set &= set - 1
				clear(sc.arr[p*sc.prevStride : (p+1)*sc.prevStride])
			}
		}
	}
	sc.arr = grownInt32s(sc.arr, need)
	sc.dirtyRows = grownU64s(sc.dirtyRows, srcWords(int(maxPkt)))
	sc.prevStride = n + 1

	words := srcWords(n + 1)
	sc.srcBits = grownU64s(sc.srcBits, words)
	for i := range sc.srcBits {
		sc.srcBits[i] = 0
	}
	setSrcBit(sc.srcBits, core.SourceID)
	for id, on := range opt.ExtraSources {
		if on && id >= 0 && int(id) <= n {
			setSrcBit(sc.srcBits, id)
		}
	}

	// The packed epoch-stamped counters need no initialization: a stale
	// stamp is an already-spent tick and reads as count zero.
	sc.sentSt = grownU64s(sc.sentSt, n+1)
	sc.recvSt = grownU64s(sc.recvSt, n+1)
	sc.cursor = grownU64s(sc.cursor, n+1)
	lag := noLag // two's-complement bits of the sentinel, shifted into the high half
	curInit := uint64(uint32(lag)) << 32
	for i := range sc.cursor {
		sc.cursor[i] = curInit
	}
	if len(sc.maxArr) == 0 {
		sc.maxArr = append(sc.maxArr, 0)
	}
	for i := range sc.maxArr {
		sc.maxArr[i] = -1
	}

	fast := opt.Latency == nil && opt.Inject == nil
	sc.eng = engine{
		scheme:    s,
		opt:       opt,
		n:         n,
		maxPkt:    maxPkt,
		stride:    n + 1,
		arr:       sc.arr,
		dirtyRows: sc.dirtyRows,
		srcBits:   sc.srcBits,
		fast:      fast,
		sentSt:    sc.sentSt,
		recvSt:    sc.recvSt,
		cursor:    sc.cursor,
		sc:        sc,
		obs:       opt.Observer,
	}
	e := &sc.eng
	if opt.SendCap == nil || opt.RecvCap == nil {
		// The default capacity tables are pure functions of (n, srcCap), so
		// repeated runs of same-shaped schemes skip the O(N) refill.
		if sc.tabN != n+1 || sc.tabSrcCap != int32(srcCap) {
			sc.sendTab = grownInt32s(sc.sendTab, n+1)
			sc.recvTab = grownInt32s(sc.recvTab, n+1)
			sc.sendTab[0] = int32(srcCap)
			sc.recvTab[0] = 1
			for i := 1; i <= n; i++ {
				sc.sendTab[i] = 1
				sc.recvTab[i] = 1
			}
			sc.tabN, sc.tabSrcCap = n+1, int32(srcCap)
		}
	}
	if opt.SendCap != nil {
		e.sendCap = opt.SendCap
	} else {
		e.sendTab = sc.sendTab
	}
	if opt.RecvCap != nil {
		e.recvCap = opt.RecvCap
	} else {
		e.recvTab = sc.recvTab
	}
	if !fast {
		e.latency = opt.Latency
		if e.latency == nil {
			e.latency = func(core.NodeID, core.NodeID) core.Slot { return 1 }
		}
		sc.ring.reset()
		e.ring = &sc.ring
	}
	return e, nil
}

// nextTick opens a new counting phase for the epoch-stamped capacity
// counters: any counter whose stamp predates the tick reads as zero. On the
// (practically unreachable) uint32 wraparound the stamp arrays are cleared
// so a stale stamp can never alias a live tick.
func (e *engine) nextTick() uint32 {
	e.sc.tick++
	if e.sc.tick == 0 {
		clear(e.sentSt)
		clear(e.recvSt)
		e.sc.tick = 1
	}
	return e.sc.tick
}

// sendCapOf returns the per-slot send capacity of a (range-checked) node.
func (e *engine) sendCapOf(id core.NodeID) int32 {
	if e.sendTab != nil {
		return e.sendTab[id]
	}
	return int32(e.sendCap(id))
}

// recvCapOf returns the per-slot receive capacity of a (range-checked) node.
func (e *engine) recvCapOf(id core.NodeID) int32 {
	if e.recvTab != nil {
		return e.recvTab[id]
	}
	return int32(e.recvCap(id))
}

// observeFail forwards a violation to the observer before the run aborts.
func (e *engine) observeFail(err error) error {
	if e.obs != nil {
		if v, ok := err.(*Violation); ok {
			e.obs.Violation(v.Slot, v.Kind, v.Tx)
		}
	}
	return err
}

// isSource reports whether the node originates packets without receiving
// them first. One bitmap probe — the ExtraSources map never reaches the
// per-slot path.
func (e *engine) isSource(id core.NodeID) bool {
	return e.srcBits[int(id)>>6]&(1<<(uint(id)&63)) != 0
}

// holds reports whether the node can transmit packet p during slot t.
func (e *engine) holds(id core.NodeID, p core.Packet, t core.Slot) bool {
	if p < 0 {
		return false
	}
	if e.isSource(id) {
		if e.opt.Mode == core.Live {
			return core.Slot(int(p)) <= t
		}
		return true
	}
	if p >= e.maxPkt {
		return false
	}
	a := e.arr[int(p)*e.stride+int(id)]
	// a stores arrival+1; the packet is forwardable from the slot after its
	// arrival, i.e. when arrival < t  ⇔  a ≤ t.
	return a != unset32 && core.Slot(a) <= t
}

// validateSends checks sender-side constraints for the slot's transmissions.
//
//phase:validate
func (e *engine) validateSends(t core.Slot, txs []core.Transmission) error {
	tick := e.nextTick()
	for _, tx := range txs {
		if tx.From < 0 || int(tx.From) > e.n || tx.To < 0 || int(tx.To) > e.n {
			return &Violation{t, "node id out of range", tx}
		}
		if tx.From == tx.To {
			return &Violation{t, "self transmission", tx}
		}
		st := e.sentSt[tx.From]
		c := uint32(1)
		if uint32(st>>32) == tick {
			c = uint32(st) + 1
		}
		e.sentSt[tx.From] = uint64(tick)<<32 | uint64(c)
		if int32(c) > e.sendCapOf(tx.From) {
			return &Violation{t, "send capacity exceeded", tx}
		}
		if !e.holds(tx.From, tx.Packet, t) {
			return &Violation{t, "sender does not hold packet", tx}
		}
	}
	return nil
}

// noteDelivery advances the playback cursors for a window packet that was
// just written to the arrival matrix. shard selects the writer's private
// SlotsUsed cursor (0 for the sequential engine).
func (e *engine) noteDelivery(shard int, id core.NodeID, p core.Packet, t core.Slot) {
	if p >= e.opt.Packets {
		return
	}
	cur := e.cursor[id]
	got := uint32(cur) + 1
	worst := int32(uint32(cur >> 32))
	if lag := int32(t) - int32(p); lag > worst {
		worst = lag
	}
	e.cursor[id] = uint64(uint32(worst))<<32 | uint64(got)
	if int32(t) > e.sc.maxArr[shard] {
		e.sc.maxArr[shard] = int32(t)
	}
}

// deliver applies arrivals scheduled for the end of slot t.
//
//phase:deliver
func (e *engine) deliver(t core.Slot, arrivals []core.Transmission) error {
	tick := e.nextTick()
	for _, tx := range arrivals {
		st := e.recvSt[tx.To]
		c := uint32(1)
		if uint32(st>>32) == tick {
			c = uint32(st) + 1
		}
		e.recvSt[tx.To] = uint64(tick)<<32 | uint64(c)
		if int32(c) > e.recvCapOf(tx.To) {
			return &Violation{t, "receive capacity exceeded", tx}
		}
		if e.isSource(tx.To) || tx.Packet >= e.maxPkt {
			// Sources discard incoming packets; packets beyond the
			// tracking horizon only count against capacity.
			if e.obs != nil {
				e.obs.Deliver(t, tx, false)
			}
			continue
		}
		idx := int(tx.Packet)*e.stride + int(tx.To)
		if e.arr[idx] != unset32 {
			if !e.opt.AllowDuplicates {
				return &Violation{t, "duplicate packet", tx}
			}
			if e.obs != nil {
				e.obs.Deliver(t, tx, true)
			}
			continue
		}
		e.arr[idx] = int32(t) + 1
		e.dirtyRows[int(tx.Packet)>>6] |= 1 << (uint(tx.Packet) & 63)
		e.noteDelivery(0, tx.To, tx.Packet, t)
		if e.obs != nil {
			e.obs.Deliver(t, tx, false)
		}
	}
	return nil
}

// filterUnavailable drops scheduled transmissions whose sender lacks the
// packet (loss cascading under SkipUnavailable).
func (e *engine) filterUnavailable(t core.Slot, txs []core.Transmission) []core.Transmission {
	if !e.opt.SkipUnavailable {
		return txs
	}
	kept := e.sc.filter[:0]
	for _, tx := range txs {
		if e.holds(tx.From, tx.Packet, t) {
			kept = append(kept, tx)
		}
	}
	e.sc.filter = kept
	return kept
}

// route assigns each validated transmission to its arrival slot, applying
// failure injection and link latency. Same-slot (latency 1) arrivals are
// appended to sameSlot and returned; later arrivals go to the in-flight
// ring. Shared by the sequential and parallel drivers; runs single-threaded
// in both so a deterministic Injector sees one schedule-ordered call
// sequence.
func (e *engine) route(t core.Slot, txs []core.Transmission, sameSlot []core.Transmission) ([]core.Transmission, error) {
	for _, tx := range txs {
		if e.opt.Drop != nil && e.opt.Drop(tx, t) {
			if e.obs != nil {
				e.obs.Drop(t, tx)
			}
			continue // lost in flight; send capacity already spent
		}
		if e.fast {
			// No LatencyFunc and no Injector: every link takes one slot, so
			// the transmission arrives at the end of this very slot.
			if e.obs != nil {
				e.obs.Transmit(t, tx)
			}
			sameSlot = append(sameSlot, tx)
			continue
		}
		if e.opt.Inject != nil && e.opt.Inject.DropTx(tx, t) {
			if e.obs != nil {
				e.obs.Drop(t, tx)
			}
			continue // lost in flight; send capacity already spent
		}
		l := e.latency(tx.From, tx.To)
		if l < 1 {
			return nil, fmt.Errorf("slotsim: slot %d: Latency(%d, %d) returned %d for %s; LatencyFunc must return at least 1",
				t, tx.From, tx.To, l, tx)
		}
		if e.opt.Inject != nil {
			x := e.opt.Inject.DelayTx(tx, t)
			if x < 0 {
				return nil, fmt.Errorf("slotsim: slot %d: Inject.DelayTx returned %d for %s; extra delay must be >= 0",
					t, x, tx)
			}
			l += x
		}
		if e.obs != nil {
			e.obs.Transmit(t, tx)
		}
		if l == 1 {
			sameSlot = append(sameSlot, tx)
		} else {
			e.ring.enqueue(t+l-1, tx)
		}
	}
	return sameSlot, nil
}

// step executes one slot on the sequential engine.
func (e *engine) step(t core.Slot, txs []core.Transmission) error {
	if e.obs == nil && e.fast && e.opt.Drop == nil {
		// Fast direct path: every link takes exactly one slot and nothing
		// observes or drops in flight, so the schedule's own slice IS the
		// slot's arrival list — skip the route copy entirely.
		txs = e.filterUnavailable(t, txs)
		if err := e.validateSends(t, txs); err != nil {
			return err
		}
		return e.deliver(t, txs)
	}
	if e.obs != nil {
		e.obs.SlotStart(t, len(txs))
	}
	txs = e.filterUnavailable(t, txs)
	if err := e.validateSends(t, txs); err != nil {
		return e.observeFail(err)
	}
	sameSlot := e.pendingArrivals(t)
	sameSlot, err := e.route(t, txs, sameSlot)
	if err != nil {
		return err
	}
	e.sc.arrive = sameSlot // retain grown capacity for later slots
	if err := e.deliver(t, sameSlot); err != nil {
		return e.observeFail(err)
	}
	if e.obs != nil {
		e.obs.SlotEnd(t)
	}
	return nil
}

// pendingArrivals returns the slot's arrival list seeded with any in-flight
// transmissions due at t, built on the reusable arrival scratch buffer.
func (e *engine) pendingArrivals(t core.Slot) []core.Transmission {
	sameSlot := e.sc.arrive[:0]
	if e.ring != nil {
		sameSlot = e.ring.drain(t, sameSlot)
	}
	return sameSlot
}

// finish computes the Result after the last slot. The playback cursors
// maintained at delivery time supply StartDelay, Missing and SlotsUsed
// directly; only the per-node buffer-occupancy scan still walks the window.
func (e *engine) finish() (*Result, error) {
	r := &Result{
		N:          e.n,
		Packets:    e.opt.Packets,
		Arrival:    make([][]core.Slot, e.n+1),
		StartDelay: make([]core.Slot, e.n+1),
		MaxBuffer:  make([]int, e.n+1),
		Missing:    make([]int, e.n+1),
	}
	// Copy arrival rows out of the reusable packed matrix: the Result must
	// stay valid after the Runner's buffers are recycled for the next run,
	// and the public rows use core.Slot with -1 = never arrived. The matrix
	// is packet-major, so read it row by row (sequential) and scatter into
	// the much smaller node-major output.
	np := int(e.opt.Packets)
	out := make([]core.Slot, (e.n+1)*np)
	for i := range out {
		out[i] = unset
	}
	for j := 0; j < np; j++ {
		for id, a := range e.arr[j*e.stride : (j+1)*e.stride] {
			if a != unset32 {
				out[id*np+j] = core.Slot(a) - 1
			}
		}
	}
	for id := 0; id <= e.n; id++ {
		r.Arrival[id] = out[id*np : (id+1)*np : (id+1)*np]
	}
	for _, m := range e.sc.maxArr {
		if core.Slot(m) > r.SlotsUsed {
			r.SlotsUsed = core.Slot(m)
		}
	}
	counts := grownInts(e.sc.counts, int(e.opt.Slots))
	e.sc.counts = counts
	for i := range counts {
		counts[i] = 0
	}
	for id := 1; id <= e.n; id++ {
		row := r.Arrival[id]
		cur := e.cursor[id]
		got := int(uint32(cur))
		if got < np {
			if !e.opt.AllowIncomplete {
				for j, a := range row {
					if a == unset {
						return nil, fmt.Errorf("slotsim: node %d never received packet %d within %d slots", id, j, e.opt.Slots)
					}
				}
			}
			r.Missing[id] = np - got
		}
		if worst := int32(uint32(cur >> 32)); worst != noLag {
			r.StartDelay[id] = core.Slot(worst)
		}
		r.MaxBuffer[id] = maxBuffer(row, r.StartDelay[id], counts)
	}
	r.SlotsUsed++
	return r, nil
}

// maxBuffer computes the peak buffer occupancy for one node: packet j
// occupies the buffer from the end of its arrival slot through the end of
// slot start+j (its playback slot), inclusive; a packet that arrives in its
// own playback slot is counted exactly once. Occupancy is sampled at the
// end of every slot, so a packet played during slot t still counts at the
// end of t; this matches the paper's "store 2 packets" accounting for the
// hypercube scheme (one being consumed plus one being disseminated).
//
// counts is a caller-owned scratch slice, all zero on entry and indexable by
// every arrival slot; maxBuffer re-zeroes each entry it touches, so the
// slice is all zero again on return and reusable for the next node.
func maxBuffer(arrival []core.Slot, start core.Slot, counts []int) int {
	var lastSlot core.Slot
	for _, a := range arrival {
		if a == unset {
			continue
		}
		counts[a]++
		if a > lastSlot {
			lastSlot = a
		}
	}
	peak, have := 0, 0
	for t := core.Slot(0); t <= lastSlot; t++ {
		have += counts[t]
		counts[t] = 0
		// Packets fully played (playback slot strictly before t) are gone.
		played := int(t - start)
		if played < 0 {
			played = 0
		}
		if played > len(arrival) {
			played = len(arrival)
		}
		if occ := have - played; occ > peak {
			peak = occ
		}
	}
	return peak
}
