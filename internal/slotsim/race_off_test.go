//go:build !race

package slotsim_test

const raceEnabled = false
