package slotsim

// Struct-of-arrays node state (see PERFORMANCE.md). The engine keeps no
// per-node structs: every per-node quantity lives in its own flat array
// indexed by NodeID, so one slot's work walks a handful of dense arrays
// instead of chasing pointers, and the parallel driver can hand each worker
// a contiguous, cache-line-aligned NodeID range of every array at once.
//
//	arr        [maxPkt · (N+1)]int32  arrival matrix, arr[p·(N+1)+id] = slot+1 (0 = not yet)
//	srcBits    [(N+1+63)/64]uint64    occupancy bitmap: which ids originate packets
//	sentSt     [N+1]uint64            send counter: epoch stamp (high 32) | count (low 32)
//	recvSt     [N+1]uint64            receive counter, same packing
//	cursor     [N+1]uint64            playback cursor: worstLag (high 32) | got (low 32)
//	dirtyRows  [(maxPkt+63)/64]uint64 bitmap of arrival-matrix packet rows written this run
//
// The counters and cursors pack two logically separate fields into one
// word on purpose: the hot path reads and writes them together, so packing
// halves the cache lines touched per transmission. The arrival matrix is
// packet-major because one slot moves few distinct packets across many
// nodes: availability checks and deliveries then walk a handful of rows
// near-sequentially instead of probing N random node rows.
//
// Two idioms keep the per-slot path free of O(N) work and of allocations:
//
//   - Epoch stamping: the capacity counters are never bulk-cleared. Each
//     validation/delivery phase draws a fresh tick; a counter whose stamp
//     is not the current tick reads as zero. Resetting N counters is one
//     integer increment.
//   - Dirty rows: the arrival matrix is never bulk-cleared between runs.
//     Each delivery marks its packet's bit in dirtyRows, and the next run
//     clears exactly the marked rows — one contiguous memclr per packet
//     that moved, instead of an O(maxPkt·N) wipe. The parallel driver
//     pre-marks the bitmap single-threaded before dispatching the deliver
//     phase to its workers, since different shards deliver the same
//     packets.

import "streamcast/internal/core"

// unset32 marks a not-yet-arrived packet in the packed arrival matrix.
// Arrival slots are stored biased by +1 so the zero value means "unset" and
// a freshly allocated matrix needs no initialization pass.
const unset32 int32 = 0

// noLag is the worstLag sentinel for "no window packet arrived yet".
// Lags can be negative (a pre-recorded packet may arrive slots early), so
// the cursor needs an out-of-band minimum rather than zero.
const noLag int32 = -1 << 30

// srcWords returns the length of the source bitmap for n+1 node ids.
func srcWords(nodes int) int { return (nodes + 63) / 64 }

// setSrcBit marks id as a packet origin in the occupancy bitmap.
func setSrcBit(bits []uint64, id core.NodeID) {
	bits[int(id)>>6] |= 1 << (uint(id) & 63)
}

// txRing is the in-flight transmission buffer for runs with link latency:
// bucket t%len holds the transmissions arriving at the end of slot t. It
// replaces the map[Slot][]Transmission of the pre-SoA engine — bucket
// storage is recycled across slots and runs, so the steady-state routing
// path allocates nothing. The ring grows (rarely, amortized) when two
// pending arrival slots collide in one bucket, which bounds its size by
// roughly twice the largest in-flight latency.
type txRing struct {
	buckets [][]core.Transmission
	// slot[i] tags the absolute arrival slot of buckets[i]; -1 = empty.
	// All pending entries of one bucket share one arrival slot, so growth
	// can relocate whole buckets without disturbing intra-slot order.
	slot []core.Slot
}

// reset empties every bucket, keeping grown storage for the next run.
func (r *txRing) reset() {
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
		r.slot[i] = -1
	}
}

// grow resizes the ring so that every pending arrival slot — plus the new
// slot `at` — maps to its own bucket, and relocates pending buckets. The
// pending slots always lie in one contiguous span (bounded by the largest
// in-flight latency), so a ring larger than that span is collision-free.
// Not on the hot path in steady state: the ring only ever grows, so a run's
// first few slots pay for all later ones.
func (r *txRing) grow(at core.Slot) {
	lo, hi := at, at
	for i, s := range r.slot {
		if s < 0 || len(r.buckets[i]) == 0 {
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	size := 8
	for core.Slot(size) <= hi-lo {
		size *= 2
	}
	buckets := make([][]core.Transmission, size)
	slots := make([]core.Slot, size)
	for i := range slots {
		slots[i] = -1
	}
	for i, b := range r.buckets {
		if r.slot[i] < 0 || len(b) == 0 {
			continue
		}
		j := int(r.slot[i]) % size
		buckets[j] = b
		slots[j] = r.slot[i]
	}
	r.buckets = buckets
	r.slot = slots
}

// enqueue schedules tx to arrive at the end of absolute slot `at`.
func (r *txRing) enqueue(at core.Slot, tx core.Transmission) {
	if n := len(r.buckets); n > 0 {
		i := int(at) % n
		switch r.slot[i] {
		case at:
			r.buckets[i] = append(r.buckets[i], tx)
			return
		case -1:
			r.slot[i] = at
			r.buckets[i] = append(r.buckets[i], tx)
			return
		}
		// Bucket occupied by a different pending slot: the ring is too
		// small for the current latency spread.
	}
	r.grow(at)
	i := int(at) % len(r.buckets)
	r.slot[i] = at
	r.buckets[i] = append(r.buckets[i], tx)
}

// drain appends the transmissions arriving at the end of slot t to dst, in
// enqueue order, and recycles their bucket.
func (r *txRing) drain(t core.Slot, dst []core.Transmission) []core.Transmission {
	n := len(r.buckets)
	if n == 0 {
		return dst
	}
	i := int(t) % n
	if r.slot[i] != t {
		return dst
	}
	dst = append(dst, r.buckets[i]...)
	r.buckets[i] = r.buckets[i][:0]
	r.slot[i] = -1
	return dst
}

// purgeTo discards every pending in-flight transmission addressed to id.
// Used by the churn path when a node id is reassigned to a joining member:
// packets that were in flight to the previous occupant must not arrive at
// the new one. Bucket order is preserved for the surviving entries.
func (r *txRing) purgeTo(id core.NodeID) {
	for i, b := range r.buckets {
		if r.slot[i] < 0 || len(b) == 0 {
			continue
		}
		kept := b[:0]
		for _, tx := range b {
			if tx.To != id {
				kept = append(kept, tx)
			}
		}
		r.buckets[i] = kept
		if len(kept) == 0 {
			r.slot[i] = -1
		}
	}
}

// grownInt32s returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers reset what they read.
func grownInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// grownU64s returns s resized to n words, reusing its backing array when
// large enough. Contents are unspecified; callers reset what they read —
// with one deliberate exception: the epoch-stamp counters (sentSt/recvSt)
// are safe uninitialized, because a stale stamp is an already-spent tick
// (ticks are monotonic across runs) and therefore never matches a live one.
func grownU64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
