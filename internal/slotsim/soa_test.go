package slotsim

import (
	"testing"

	"streamcast/internal/core"
)

// TestTxRingOrdering: drain returns each slot's transmissions in enqueue
// order, and an empty slot drains nothing.
func TestTxRingOrdering(t *testing.T) {
	var r txRing
	r.enqueue(3, tx(0, 1, 0))
	r.enqueue(4, tx(0, 2, 0))
	r.enqueue(3, tx(1, 2, 1))
	if got := r.drain(2, nil); len(got) != 0 {
		t.Fatalf("slot 2 drained %d transmissions, want 0", len(got))
	}
	got := r.drain(3, nil)
	if len(got) != 2 || got[0] != tx(0, 1, 0) || got[1] != tx(1, 2, 1) {
		t.Fatalf("slot 3 drained %v, want enqueue order", got)
	}
	if got := r.drain(3, nil); len(got) != 0 {
		t.Fatal("slot 3 drained twice")
	}
	if got := r.drain(4, nil); len(got) != 1 || got[0] != tx(0, 2, 0) {
		t.Fatalf("slot 4 drained %v", got)
	}
}

// TestTxRingGrowth: two pending slots that collide in a small ring force a
// grow; nothing may be lost or reordered, including when a third colliding
// slot arrives after the resize.
func TestTxRingGrowth(t *testing.T) {
	var r txRing
	// Slots 1 and 9 collide mod 8 (the initial ring size); 17 collides with
	// both mod 8 and with 1 mod 16.
	slots := []core.Slot{1, 9, 17}
	for i, at := range slots {
		for j := 0; j < 3; j++ {
			r.enqueue(at, tx(core.NodeID(i), core.NodeID(j+1), core.Packet(j)))
		}
	}
	for i, at := range slots {
		got := r.drain(at, nil)
		if len(got) != 3 {
			t.Fatalf("slot %d drained %d transmissions, want 3", at, len(got))
		}
		for j, x := range got {
			want := tx(core.NodeID(i), core.NodeID(j+1), core.Packet(j))
			if x != want {
				t.Fatalf("slot %d entry %d: got %v, want %v", at, j, x, want)
			}
		}
	}
}

// TestTxRingReset: reset empties all buckets but keeps capacity, so a second
// run starting at unrelated slots sees a clean ring.
func TestTxRingReset(t *testing.T) {
	var r txRing
	r.enqueue(5, tx(0, 1, 0))
	r.enqueue(6, tx(0, 2, 1))
	r.reset()
	if got := r.drain(5, nil); len(got) != 0 {
		t.Fatalf("slot 5 survived reset: %v", got)
	}
	// Re-enqueue into the recycled bucket at the same residue.
	r.enqueue(5, tx(1, 2, 2))
	if got := r.drain(5, nil); len(got) != 1 || got[0] != tx(1, 2, 2) {
		t.Fatalf("recycled bucket drained %v", got)
	}
}
