# Streamcast build/test entry points. Tier-1 verification (ROADMAP.md) is
# `make ci`: build + vet + streamvet lint + full test suite, plus the race
# pass over the engine and observability packages.

GO ?= go

.PHONY: build test race vet lint bench ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the packages with real concurrency: the parallel engine
# and the observer event merging layered on it.
race:
	$(GO) test -race ./internal/slotsim/... ./internal/obs/... ./internal/runtime/... ./internal/integration/...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the streamvet analyzers (see
# STATIC_ANALYSIS.md) over every package in the module.
lint:
	$(GO) run ./cmd/streamvet

# Full benchmark sweep (one iteration each) — doubles as a reproduction
# record; see bench_test.go.
bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

ci: build vet lint test race

clean:
	$(GO) clean ./...
