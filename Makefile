# Streamcast build/test entry points. Tier-1 verification (ROADMAP.md) is
# `make ci`: build + vet + streamvet lint + full test suite, plus the race
# pass over the engine and observability packages, short fuzz smokes of the
# fault-plan and scenario parsers, and the chaos/scenario corpus replays.

GO ?= go

.PHONY: build test race vet lint lint-json lint-fix-check bench benchsmoke bench-json bench-gate fuzz chaos scenarios cover ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the packages with real concurrency: the parallel engine,
# the observer event merging layered on it, and the fault-injection suite
# (whose parity tests drive both engines and the concurrent runtime). The
# concurrency analyzers (shardsafe/barrierphase) run alongside: the same
# invariants the race detector observes dynamically are proven statically.
race:
	$(GO) test -race ./internal/slotsim/... ./internal/obs/... ./internal/runtime/... ./internal/integration/... ./internal/faults/...
	$(GO) run ./cmd/streamvet -analyzers shardsafe,barrierphase

vet:
	$(GO) vet ./...

# Project-specific static analysis: the streamvet analyzers (see
# STATIC_ANALYSIS.md) over every package in the module.
lint:
	$(GO) run ./cmd/streamvet

# Machine-readable findings (one JSON array of file/line/col/analyzer/message
# records) for CI annotations and editor integration. Exit status matches
# `make lint`: non-zero when anything is reported.
lint-json:
	$(GO) run ./cmd/streamvet -json

# CI gate asserting the repo is clean under every analyzer: the -json stream
# must be exactly the empty array, so stray stdout noise or a partial run
# cannot masquerade as a clean pass.
lint-fix-check:
	@out="$$($(GO) run ./cmd/streamvet -json)" || { printf '%s\n' "$$out"; echo "lint-fix-check: streamvet reported findings"; exit 1; }; \
	clean="$$(printf '%s' "$$out" | tr -d '[:space:]')"; \
	[ "$$clean" = "[]" ] || { printf '%s\n' "$$out"; echo "lint-fix-check: expected empty findings array"; exit 1; }

# Full benchmark sweep (one iteration each) — doubles as a reproduction
# record; see bench_test.go.
bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

# One-iteration benchmark smoke: proves every benchmark still compiles and
# runs, including the N=10^5 slot-engine scale cases. Part of ci; -short
# skips only the million-node hypercube, and numbers from a 1x pass are not
# meaningful. The fingerprint smoke then pins the sharded engine at two
# workers against the sequential fingerprint, so even a single-CPU CI run
# proves the persistent-pool barrier delivers bit-identical results.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -benchmem -short -run XXX .
	$(GO) test ./internal/slotsim -run TestShardedSmokeTwoWorkers -count=1

# Measured benchmark snapshot as JSON (ns/op, B/op, allocs/op, custom
# metrics), written to BENCH_<date>.json via cmd/benchdiff. Compare two
# snapshots with:
#   go run ./cmd/benchdiff -old BENCH_a.json -new BENCH_b.json -threshold 0.2
BENCHTIME ?= 2x
bench-json:
	$(GO) test -bench . -benchtime $(BENCHTIME) -benchmem -run XXX . \
		| $(GO) run ./cmd/benchdiff -write BENCH_$$(date +%Y-%m-%d).json

# Short fuzz smoke over the fault-plan parser (FAULTS.md) and the scenario
# parser/formatter round trip (SCENARIOS.md). CI keeps these brief; crank
# -fuzztime for a real session.
fuzz:
	$(GO) test -fuzz '^FuzzFaultPlan$$' -fuzztime 5s -run '^$$' ./internal/faults
	$(GO) test -fuzz '^FuzzScenario$$' -fuzztime 5s -run '^$$' ./internal/spec
	$(GO) test -fuzz '^FuzzRandRegScenario$$' -fuzztime 5s -run '^$$' ./internal/spec

# Replay the pinned fault corpus (internal/faults/testdata/corpus) and fail
# on any fingerprint drift. Refresh intentionally with:
#   go test ./internal/faults -run TestChaosCorpus -update
chaos:
	$(GO) test ./internal/faults -run 'TestChaosCorpus|TestCorpusPlansRoundTrip' -count=1 -v

# Replay the pinned scenario corpus (internal/spec/testdata/scenarios):
# every corpus scenario must parse, stay canonical, build through the
# registry, and reproduce its pinned result fingerprint; no construction
# site may bypass the registry. Refresh fingerprints intentionally with:
#   go test ./internal/spec -run TestScenarioCorpus -update
scenarios:
	$(GO) test ./internal/spec -run 'TestScenarioCorpus|TestCorpusScenariosCanonical|TestNoStrayConstruction' -count=1 -v

# Aggregate statement-coverage gate: one profile over every package,
# totalled with `go tool cover -func`. The recorded baseline is 82.6%
# (2026-08); COVER_MIN sits a few points below it so the gate catches a PR
# landing a large untested surface without tripping on routine drift. The
# profile lives in a temp file so a gate run never leaves artifacts in the
# tree; for per-function detail, write your own profile:
#   go test -coverprofile=/tmp/cover.out ./... && go tool cover -func=/tmp/cover.out
COVER_MIN ?= 78.0
cover:
	@prof=$$(mktemp); \
	$(GO) test -coverprofile=$$prof ./... || { rm -f $$prof; exit 1; }; \
	total=$$($(GO) tool cover -func=$$prof | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f $$prof; \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= min+0) }' \
		|| { echo "cover: total $$total% is below the $(COVER_MIN)% gate"; exit 1; }

# Benchmark regression gate against the committed baseline snapshot: rerun
# the N=10^4 multitree slot-engine row (the headline scale case, and the
# only row stable enough to gate on in shared CI) and fail if ns/op or
# allocs/op regressed past 25%. Rows present in the baseline but filtered
# out of the fresh run are reported as missing, never failed — that is what
# lets this gate run a narrow -bench filter. Refresh the baseline with
# `make bench-json` and point BENCH_BASELINE at the new snapshot.
BENCH_BASELINE ?= BENCH_2026-08-07-pr9.json
bench-gate:
	@snap=$$(mktemp); \
	$(GO) test -bench 'SlotEngineScale/multitree-N10000/sequential' -benchtime 2x -benchmem -run XXX . \
		| $(GO) run ./cmd/benchdiff -write $$snap || { rm -f $$snap; exit 1; }; \
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASELINE) -new $$snap -threshold 0.25; \
	status=$$?; rm -f $$snap; exit $$status

ci: build vet lint lint-fix-check test race fuzz chaos scenarios cover benchsmoke bench-gate

clean:
	$(GO) clean ./...
