module streamcast

go 1.22
