// Command benchdiff snapshots `go test -bench` output as JSON and compares
// two snapshots for regressions.
//
// Snapshot mode (reads bench output from stdin):
//
//	go test -bench . -benchmem -run XXX . | go run ./cmd/benchdiff -write BENCH_2026-08-05.json
//
// Compare mode (exits 1 when ns/op or allocs/op regressed past -threshold):
//
//	go run ./cmd/benchdiff -old BENCH_old.json -new BENCH_new.json -threshold 0.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit, e.g.
	// "delay_d2_N2000" -> 18.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is a dated set of benchmark results.
type Snapshot struct {
	Date       string      `json:"date"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// Non-benchmark lines (package headers, PASS, custom logs) are ignored.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(f[0]), Iterations: iters}
		// The rest of the line is (value, unit) pairs.
		ok := true
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		if ok && b.NsPerOp > 0 {
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// trimProcs removes the trailing -<GOMAXPROCS> suffix of a benchmark name,
// so snapshots taken at different parallelism settings stay comparable.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// regression describes one metric that moved past the threshold.
type regression struct {
	name   string
	metric string
	old    float64
	new    float64
}

// compare returns the regressions and improvements between two snapshots:
// ns/op and allocs/op changes beyond the fractional threshold.
func compare(old, cur *Snapshot, threshold float64) (regs, imps []regression, missing []string) {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	for _, ob := range old.Benchmarks {
		nb, ok := curBy[ob.Name]
		if !ok {
			missing = append(missing, ob.Name)
			continue
		}
		check := func(metric string, ov, nv float64) {
			if ov <= 0 {
				return
			}
			switch delta := (nv - ov) / ov; {
			case delta > threshold:
				regs = append(regs, regression{ob.Name, metric, ov, nv})
			case delta < -threshold:
				imps = append(imps, regression{ob.Name, metric, ov, nv})
			}
		}
		check("ns/op", ob.NsPerOp, nb.NsPerOp)
		check("allocs/op", ob.AllocsPerOp, nb.AllocsPerOp)
	}
	return regs, imps, missing
}

func main() {
	write := flag.String("write", "", "parse bench output from stdin and write a JSON snapshot to this file")
	oldPath := flag.String("old", "", "baseline snapshot for comparison")
	newPath := flag.String("new", "", "candidate snapshot for comparison")
	threshold := flag.Float64("threshold", 0.20, "fractional regression threshold for ns/op and allocs/op")
	flag.Parse()

	switch {
	case *write != "":
		benches, err := parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if len(benches) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
			os.Exit(2)
		}
		snap := Snapshot{Date: time.Now().Format("2006-01-02"), Benchmarks: benches}
		data, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(benches), *write)
	case *oldPath != "" && *newPath != "":
		old, err := readSnapshot(*oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		cur, err := readSnapshot(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		regs, imps, missing := compare(old, cur, *threshold)
		for _, r := range imps {
			fmt.Printf("improved  %-60s %-10s %14.1f -> %14.1f (%+.1f%%)\n",
				r.name, r.metric, r.old, r.new, 100*(r.new-r.old)/r.old)
		}
		for _, name := range missing {
			fmt.Printf("missing   %s (in %s only)\n", name, *oldPath)
		}
		for _, r := range regs {
			fmt.Printf("REGRESSED %-60s %-10s %14.1f -> %14.1f (%+.1f%%)\n",
				r.name, r.metric, r.old, r.new, 100*(r.new-r.old)/r.old)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchdiff: no regressions past %.0f%% (%d benchmarks compared)\n",
			*threshold*100, len(old.Benchmarks)-len(missing))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
