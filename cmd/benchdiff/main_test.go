package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: streamcast
BenchmarkEngineSequentialVsParallel/sequential-8         	     168	   7135434 ns/op	11116248 B/op	    6668 allocs/op
BenchmarkEngineSequentialVsParallel/parallel-2-8         	      98	  12112340 ns/op	11240012 B/op	    7120 allocs/op
BenchmarkFig4WorstCaseDelay-8                            	      76	  15711362 ns/op	        18.00 delay_d2_N2000	14630736 B/op	   15134 allocs/op
PASS
ok  	streamcast	4.521s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	byName := make(map[string]Benchmark)
	for _, b := range benches {
		byName[b.Name] = b
	}
	seq, ok := byName["BenchmarkEngineSequentialVsParallel/sequential"]
	if !ok {
		t.Fatalf("sequential benchmark missing (procs suffix not trimmed?): %v", byName)
	}
	if seq.Iterations != 168 || seq.NsPerOp != 7135434 || seq.BytesPerOp != 11116248 || seq.AllocsPerOp != 6668 {
		t.Errorf("sequential parsed as %+v", seq)
	}
	fig4 := byName["BenchmarkFig4WorstCaseDelay"]
	if got := fig4.Metrics["delay_d2_N2000"]; got != 18 {
		t.Errorf("custom metric delay_d2_N2000 = %v, want 18", got)
	}
	for i := 1; i < len(benches); i++ {
		if benches[i-1].Name > benches[i].Name {
			t.Errorf("benchmarks not sorted: %q > %q", benches[i-1].Name, benches[i].Name)
		}
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/parallel-2": "BenchmarkFoo/parallel", // trailing digits always trimmed
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo-bar":        "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareThreshold(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "C", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "Gone", NsPerOp: 1000},
	}}
	cur := &Snapshot{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1500, AllocsPerOp: 100}, // ns/op regression
		{Name: "B", NsPerOp: 400, AllocsPerOp: 100},  // improvement
		{Name: "C", NsPerOp: 1100, AllocsPerOp: 130}, // ns within threshold, allocs regressed
	}}
	regs, imps, missing := compare(old, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions (%v), want 2", len(regs), regs)
	}
	if regs[0].name != "A" || regs[0].metric != "ns/op" {
		t.Errorf("first regression = %+v, want A ns/op", regs[0])
	}
	if regs[1].name != "C" || regs[1].metric != "allocs/op" {
		t.Errorf("second regression = %+v, want C allocs/op", regs[1])
	}
	if len(imps) != 1 || imps[0].name != "B" {
		t.Errorf("improvements = %v, want just B", imps)
	}
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Errorf("missing = %v, want [Gone]", missing)
	}
}
