// Command treeviz prints the constructions and schedules behind the
// paper's figures:
//
//	treeviz -fig 1                    cluster super-tree (Figure 1)
//	treeviz -fig 2 -node 6            per-node schedule (Figure 2)
//	treeviz -fig 3                    interior-disjoint trees (Figure 3)
//	treeviz -fig 4                    delay-vs-N ASCII chart (Figure 4)
//	treeviz -fig 5                    hypercube buffer trace (Figures 5/6)
//	treeviz -fig 7                    hypercube pairing pattern (Figure 7)
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcast/internal/core"
	"streamcast/internal/multitree"
	"streamcast/internal/spec"
	"streamcast/internal/trace"
)

func main() {
	var (
		fig  = flag.Int("fig", 3, "figure to render: 1, 2, 3, 4, 5, 7")
		n    = flag.Int("n", 15, "receivers (figs 2, 3)")
		d    = flag.Int("d", 3, "tree degree (figs 1, 2, 3)")
		node = flag.Int("node", 6, "node id (fig 2)")
		k    = flag.Int("k", 3, "hypercube dimension (figs 5, 7)")
		kk   = flag.Int("K", 9, "clusters (fig 1)")
		dd   = flag.Int("D", 3, "backbone degree (fig 1)")
		c    = flag.String("construction", "both", "greedy | structured | both (figs 2, 3)")
	)
	flag.Parse()

	switch *fig {
	case 1:
		fmt.Print(trace.ClusterTree(*kk, *dd, *d))
	case 2:
		for _, constr := range pick(*c) {
			s := buildTree(*n, *d, constr)
			fmt.Printf("-- %s construction --\n", constr)
			fmt.Print(trace.NodeSchedule(s, core.NodeID(*node)))
		}
	case 3:
		for _, constr := range pick(*c) {
			s := buildTree(*n, *d, constr)
			fmt.Printf("-- %s construction (N=%d, d=%d) --\n", constr, *n, *d)
			fmt.Print(trace.Trees(s.Tree))
		}
	case 4:
		out, err := trace.DelayCurves(2000, 200, []int{2, 3, 4, 5})
		check(err)
		fmt.Print(out)
	case 5, 6:
		out, err := trace.HypercubeBufferTrace(*k, core.Slot(2**k), core.Slot(2**k+2))
		check(err)
		fmt.Print(out)
	case 7:
		fmt.Print(trace.HypercubePairs(*k))
	default:
		check(fmt.Errorf("unknown figure %d", *fig))
	}
}

// buildTree resolves a multi-tree through the scheme registry, the same
// construction path the simulator and experiments use.
func buildTree(n, d int, constr multitree.Construction) *multitree.Scheme {
	run, err := spec.Build(spec.MultiTreeScenario(n, d, constr, core.PreRecorded))
	check(err)
	return run.Scheme.(*multitree.Scheme)
}

func pick(c string) []multitree.Construction {
	switch c {
	case "greedy":
		return []multitree.Construction{multitree.Greedy}
	case "structured":
		return []multitree.Construction{multitree.Structured}
	default:
		return []multitree.Construction{multitree.Structured, multitree.Greedy}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "treeviz: %v\n", err)
		os.Exit(1)
	}
}
