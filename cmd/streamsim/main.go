// Command streamsim runs one streaming scheme through the slot-synchronous
// simulator and reports its QoS metrics: per-scheme worst and average
// playback delay, peak buffer occupancy, and neighbor counts.
//
// Every run is a spec.Scenario (see SCENARIOS.md): the flags are a thin
// translation into one, and -scenario runs one straight from a file — the
// two paths are byte-identical. -list-schemes prints the scheme registry
// with every accepted parameter; a parameter the selected scheme would
// silently ignore is a precise error, not a no-op.
//
// Examples:
//
//	streamsim -scheme multitree -n 100 -d 3 -construction greedy -mode live
//	streamsim -scheme hypercube -n 100 -d 2
//	streamsim -scheme cluster -n 20 -k 9 -D 3 -d 4 -tc 5
//	streamsim -scheme session -n 50 -d 3 -swaps 20:4:9
//	streamsim -scheme randreg -n 200 -degree 3 -randreg-mode latin -seed 7
//	streamsim -scenario run.scn
//	streamsim -list-schemes
//
// The -check flag runs the static schedule/mesh verifier (internal/check,
// see STATIC_ANALYSIS.md) as a preflight; on families without a static
// schedule (gossip, mdc, session, randreg) it fails fast instead of
// producing spurious verifier output:
//
//	streamsim -scheme multitree -n 100 -d 3 -check
//
// Observability (see OBSERVABILITY.md): any slotsim run can additionally
// emit Prometheus-format metrics, a JSONL event trace, and a JSON run
// report with per-slot buffer-occupancy series, and can serve net/http/pprof
// while running:
//
//	streamsim -scheme multitree -n 255 -d 3 -report-out report.json
//	streamsim -scheme hypercube -n 500 -metrics-out metrics.prom -trace-out events.jsonl
//	streamsim -scheme multitree -n 100000 -parallel -pprof localhost:6060
//
// Scale (see PERFORMANCE.md): the struct-of-arrays engine runs N=10^5–10^6
// node scenarios directly; -parallel shards slots across workers over
// contiguous NodeID ranges with results bit-identical to the sequential
// engine at any -workers count, so worker count is purely a tuning knob:
//
//	streamsim -scheme multitree -n 1000000 -d 4 -parallel -workers 8
//
// Fault injection (see FAULTS.md): -faults loads a deterministic fault plan
// (crashes, transient loss, link delay, churn) and replays it against the
// run; -fault-seed overrides the plan's seed. The same plan and seed give a
// bit-identical event stream on the sequential and parallel engines, and
// the same frame losses on the goroutine runtime:
//
//	streamsim -scheme multitree -n 100 -d 3 -faults chaos.plan
//	streamsim -scheme multitree -n 100 -d 3 -faults chaos.plan -fault-seed 7 -parallel
//
// Live churn (the churn scenario directive): -churn makes joins and leaves
// a mid-run workload — the topology re-plans at slot barriers while the
// stream keeps flowing, each operation held to the paper's d²+d swap
// bound, and the run reports playback SLOs (hiccups, stalls, rebuffer
// ratio, time to repair) instead of a pre-churn snapshot:
//
//	streamsim -scheme multitree -n 100 -d 3 -churn poisson -churn-rate 0.5 -churn-seed 7
//	streamsim -scheme multitree -n 100 -d 3 -churn flash -churn-rate 2 -churn-slots 10..40 -churn-policy lazy
//	streamsim -scheme multitree -n 100 -d 3 -churn plan -faults chaos.plan
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"

	"streamcast/internal/cluster"
	"streamcast/internal/core"
	"streamcast/internal/mdc"
	"streamcast/internal/obs"
	"streamcast/internal/slotsim"
	"streamcast/internal/spec"
)

// cli holds the flag set and its value bindings so the flag→scenario
// translation is testable against the -scenario path.
type cli struct {
	fs *flag.FlagSet

	scenarioPath string
	listSchemes  bool
	pprofAddr    string

	scheme       string
	n            int
	d            int
	construction string
	mode         string
	packets      int
	slots        int
	k            int
	dd           int
	tc           int
	intra        string
	gossipDeg    int
	strategy     string
	degree       int
	rrMode       string
	seed         int64
	swaps        string
	rounds       int
	doCheck      bool
	parallel     bool
	workers      int
	engine       string
	metricsOut   string
	traceOut     string
	reportOut    string
	faultsPath   string
	faultSeed    int64
	churnKind    string
	churnRate    float64
	churnSeed    int64
	churnMax     int
	churnPolicy  string
	churnSlots   string
}

// newCLI registers every flag on the given set. Defaults mirror the
// registry's parameter defaults; only explicitly set flags reach the
// scenario, so the registry rejects anything the scheme would ignore.
func newCLI(fs *flag.FlagSet) *cli {
	c := &cli{fs: fs}
	fs.StringVar(&c.scenarioPath, "scenario", "", "run this scenario file (SCENARIOS.md) instead of the flag scenario")
	fs.BoolVar(&c.listSchemes, "list-schemes", false, "print the scheme registry (families, parameters, capabilities) and exit")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")

	fs.StringVar(&c.scheme, "scheme", "multitree", "scheme family (see -list-schemes)")
	fs.IntVar(&c.n, "n", 100, "number of receivers (per cluster for -scheme cluster)")
	fs.IntVar(&c.d, "d", 3, "degree / source capacity d")
	fs.StringVar(&c.construction, "construction", "greedy", "multi-tree construction: greedy | structured")
	fs.StringVar(&c.mode, "mode", "prerecorded", "prerecorded | live | prebuffered")
	fs.IntVar(&c.packets, "packets", 0, "measurement window in packets (0 = auto)")
	fs.IntVar(&c.slots, "slots", 0, "total horizon in slots (0 = auto)")
	fs.IntVar(&c.k, "k", 4, "clusters (cluster scheme)")
	fs.IntVar(&c.dd, "D", 3, "backbone degree D (cluster scheme)")
	fs.IntVar(&c.tc, "tc", 5, "inter-cluster latency Tc (cluster scheme)")
	fs.StringVar(&c.intra, "intra", "multitree", "intra-cluster scheme: multitree | hypercube (cluster scheme)")
	fs.IntVar(&c.gossipDeg, "gossip-degree", 5, "gossip neighbor-set size")
	fs.StringVar(&c.strategy, "strategy", "pull-oldest", "gossip pull strategy: pull-oldest | pull-newest | pull-random")
	fs.IntVar(&c.degree, "degree", 3, "d-regular digraph degree (randreg scheme)")
	fs.StringVar(&c.rrMode, "randreg-mode", "latin", "randreg schedule: latin | pull | push")
	fs.Int64Var(&c.seed, "seed", 1, "seed for the gossip mesh or randreg digraph")
	fs.StringVar(&c.swaps, "swaps", "", "mid-stream swaps slot:a:b[,...] (session scheme)")
	fs.IntVar(&c.rounds, "rounds", 6, "MDC playback rounds (mdc scheme)")
	fs.BoolVar(&c.doCheck, "check", false, "statically verify the schedule and mesh (internal/check) before running")
	fs.BoolVar(&c.parallel, "parallel", false, "use the sharded parallel engine (bit-identical results)")
	fs.IntVar(&c.workers, "workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
	fs.StringVar(&c.engine, "engine", "slotsim", "slotsim | runtime (goroutine message passing)")
	fs.StringVar(&c.metricsOut, "metrics-out", "", "write Prometheus-format metrics to this file ('-' for stdout)")
	fs.StringVar(&c.traceOut, "trace-out", "", "write a JSONL event trace to this file ('-' for stdout)")
	fs.StringVar(&c.reportOut, "report-out", "", "write a JSON run report to this file ('-' for stdout)")
	fs.StringVar(&c.faultsPath, "faults", "", "replay this deterministic fault plan (see FAULTS.md)")
	fs.Int64Var(&c.faultSeed, "fault-seed", 0, "override the fault plan's seed (0 = keep the plan's)")
	fs.StringVar(&c.churnKind, "churn", "", "run live mid-stream churn: plan | poisson | flash | wave")
	fs.Float64Var(&c.churnRate, "churn-rate", 0, "expected churn ops per slot (generator kinds)")
	fs.Int64Var(&c.churnSeed, "churn-seed", 0, "churn generator seed (0 = the default)")
	fs.IntVar(&c.churnMax, "churn-max", 0, "join budget / id-space ceiling (0 = auto)")
	fs.StringVar(&c.churnPolicy, "churn-policy", "", "repair policy: eager | lazy")
	fs.StringVar(&c.churnSlots, "churn-slots", "", "churn window lo..hi (lo.. = open-ended)")
	return c
}

// paramFlags maps flag names to registry parameter names.
var paramFlags = map[string]string{
	"n": "n", "d": "d", "construction": "construction",
	"k": "k", "D": "D", "tc": "tc", "intra": "intra",
	"gossip-degree": "degree", "strategy": "strategy", "seed": "seed",
	"swaps": "swaps", "rounds": "rounds",
	"degree": "degree", "randreg-mode": "mode",
}

// scenario translates the parsed flags into a spec.Scenario. Only flags
// the user actually set become part of the scenario, so the registry's
// validation applies to flag runs and scenario files identically.
func (c *cli) scenario() (*spec.Scenario, error) {
	sc := &spec.Scenario{Scheme: c.scheme}
	var badFlag error
	c.fs.Visit(func(f *flag.Flag) {
		if param, ok := paramFlags[f.Name]; ok {
			if sc.Params == nil {
				sc.Params = map[string]string{}
			}
			sc.Params[param] = f.Value.String()
			return
		}
		switch f.Name {
		case "mode":
			sc.Mode = c.mode
		case "engine":
			if c.engine != "slotsim" {
				sc.Engine = c.engine
			}
		case "scenario", "list-schemes", "pprof", "scheme":
			// handled outside the scenario
		case "packets":
			sc.Packets = c.packets
		case "slots":
			sc.Slots = c.slots
		case "check":
			sc.Check = c.doCheck
		case "parallel":
			sc.Parallel = c.parallel
		case "workers":
			sc.Workers = c.workers
		case "metrics-out":
			sc.MetricsOut = c.metricsOut
		case "trace-out":
			sc.TraceOut = c.traceOut
		case "report-out":
			sc.ReportOut = c.reportOut
		case "faults":
			sc.FaultsFile = c.faultsPath
		case "fault-seed":
			sc.FaultSeed = c.faultSeed
		case "churn":
			sc.ChurnKind = c.churnKind
		case "churn-rate":
			sc.ChurnRate = c.churnRate
		case "churn-seed":
			sc.ChurnSeed = c.churnSeed
		case "churn-max":
			sc.ChurnMax = c.churnMax
		case "churn-policy":
			// eager is the canonical default spelling, stored as empty
			// exactly as the directive parser stores it.
			if c.churnPolicy != "eager" {
				sc.ChurnPolicy = c.churnPolicy
			}
		case "churn-slots":
			lo, hi, err := spec.ParseChurnWindow(c.churnSlots)
			if err != nil {
				badFlag = fmt.Errorf("-churn-slots: %v", err)
				return
			}
			sc.ChurnBegin, sc.ChurnEnd = lo, hi
		default:
			badFlag = fmt.Errorf("flag -%s has no scenario mapping", f.Name)
		}
	})
	if badFlag != nil {
		return nil, badFlag
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func main() {
	c := newCLI(flag.CommandLine)
	flag.Parse()

	if c.listSchemes {
		printSchemes(os.Stdout)
		return
	}

	if c.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(c.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "streamsim: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "streamsim: pprof listening on http://%s/debug/pprof/\n", c.pprofAddr)
	}

	var (
		sc  *spec.Scenario
		err error
	)
	if c.scenarioPath != "" {
		anyFlagScenario := false
		c.fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "pprof":
			default:
				anyFlagScenario = true
			}
		})
		if anyFlagScenario {
			fatalf("-scenario replaces the flag scenario; drop the other flags or fold them into %s", c.scenarioPath)
		}
		sc, err = spec.Load(c.scenarioPath)
	} else {
		sc, err = c.scenario()
	}
	check(err)
	check(runScenario(sc, os.Stdout, os.Stderr))
}

// printSchemes renders the registry: one block per family with its
// capability flags and accepted parameters.
func printSchemes(w io.Writer) {
	for _, f := range spec.Families() {
		var caps []string
		if f.Caps.StaticCheck {
			caps = append(caps, "checkable")
		}
		if f.Caps.Periodic {
			caps = append(caps, "periodic")
		}
		if f.Caps.BestEffort {
			caps = append(caps, "best-effort")
		}
		if f.Caps.Churn {
			caps = append(caps, "churn")
		}
		if f.Caps.LiveChurn {
			caps = append(caps, "live-churn")
		}
		fmt.Fprintf(w, "%-12s %s\n", f.Name, f.Doc)
		if len(caps) > 0 {
			fmt.Fprintf(w, "             capabilities: %v\n", caps)
		}
		for _, p := range f.Params {
			def := p.Def
			if def == "" {
				def = `""`
			}
			fmt.Fprintf(w, "             -%s (default %s): %s\n", flagName(p.Name), def, p.Doc)
		}
	}
}

// flagName maps a registry parameter name back to its streamsim flag. A
// same-named flag wins; otherwise the lexicographically smallest mapped
// flag is chosen so the listing is deterministic (e.g. parameter "degree"
// is served by both -degree and -gossip-degree).
func flagName(param string) string {
	if p, ok := paramFlags[param]; ok && p == param {
		return param
	}
	best := ""
	for fl, p := range paramFlags {
		if p == param && (best == "" || fl < best) {
			best = fl
		}
	}
	if best != "" {
		return best
	}
	return param
}

// runScenario builds and executes one scenario, writing the human report
// to stdout and the progress/diagnostic lines to stderr — the single path
// behind both the flag and -scenario invocations.
func runScenario(sc *spec.Scenario, stdout, stderr io.Writer) error {
	run, err := spec.Build(sc)
	if err != nil {
		return err
	}
	if sum := run.Churn; sum != nil {
		fmt.Fprintf(stderr,
			"streamsim: churn: %d ops, %d total swaps, worst op %d (bound d²+d = %d), %d members affected\n",
			sum.Ops, sum.TotalSwaps, sum.MaxSwaps, sum.Bound, sum.Affected)
	}
	if run.Injector != nil {
		fmt.Fprintf(stderr, "streamsim: faults: %s\n", run.Injector.Describe())
	}
	if sc.Check {
		rep, err := run.Preflight()
		if err != nil {
			return err
		}
		if !rep.OK() {
			for _, is := range rep.Issues {
				fmt.Fprintf(stderr, "streamsim: check: %s\n", is)
			}
			return fmt.Errorf("static check rejected %s (%d issues)", rep.Scheme, len(rep.Issues))
		}
		fmt.Fprintf(stderr, "streamsim: check: %s ok (worst delay %d, worst buffer %d)\n",
			rep.Scheme, rep.WorstDelay, rep.WorstBuffer)
	}

	if sc.Engine == "runtime" {
		return runOnRuntime(run, stdout)
	}

	sk, observer, err := newSinks(sc.MetricsOut, sc.TraceOut, sc.ReportOut)
	if err != nil {
		return err
	}
	opt := run.Opt
	opt.Observer = observer
	var (
		res *slotsim.Result
		wk  int
	)
	if sc.Parallel {
		wk = sc.Workers
		res, err = slotsim.RunParallel(run.Scheme, opt, sc.Workers)
	} else {
		res, err = slotsim.Run(run.Scheme, opt)
	}
	if err != nil {
		return err
	}
	churn := run.ChurnReport(res)
	if churn != nil {
		fmt.Fprintf(stderr,
			"streamsim: live churn: %d ops (%d joins, %d leaves), %d total swaps, worst op %d (bound d²+d = %d)\n",
			churn.Ops, churn.Joins, churn.Leaves, churn.TotalSwaps, churn.MaxSwaps, churn.SwapBound)
		fmt.Fprintf(stderr,
			"streamsim: playback SLO: %d nodes, %d hiccups in %d gaps, max stall %d slots, rebuffer %.4f, repair %d slots\n",
			churn.NodesMeasured, churn.Hiccups, churn.Gaps, churn.MaxStallSlots, churn.RebufferRatio, churn.TimeToRepairSlots)
	}
	report(run, res, stdout)
	return sk.finish(run.Scheme, opt, res, wk, churn)
}

// runOnRuntime executes the scenario on the goroutine message-passing
// runtime and prints its report shape.
func runOnRuntime(run *spec.Run, stdout io.Writer) error {
	rres, err := run.ExecuteRuntime()
	if err != nil {
		return err
	}
	s := run.Scheme
	fmt.Fprintf(stdout, "scheme:        %s (goroutine runtime)\n", s.Name())
	fmt.Fprintf(stdout, "receivers:     %d\n", s.NumReceivers())
	fmt.Fprintf(stdout, "worst delay:   %d slots\n", rres.WorstStart())
	fmt.Fprintf(stdout, "worst buffer:  %d packets\n", rres.WorstBuffer())
	fmt.Fprintf(stdout, "warmup rebuf:  %d\n", rres.TotalHiccups())
	if run.Injector != nil {
		// Played keeps counting past the verification window while the
		// stream continues, so report window completion, not raw totals.
		complete := 0
		for id := 1; id <= s.NumReceivers(); id++ {
			if rres.Reports[id].Played >= int(run.Opt.Packets) {
				complete++
			}
		}
		fmt.Fprintf(stdout, "faulted:       %d of %d nodes played the full %d-packet window\n",
			complete, s.NumReceivers(), run.Opt.Packets)
	}
	return nil
}

// report prints the slotsim result: the generic shape for most families,
// the receivers-only shape for cluster (its delay statistics exclude the
// backbone infrastructure nodes), and the quality lines for mdc.
func report(run *spec.Run, res *slotsim.Result, w io.Writer) {
	s := run.Scheme
	if cs, ok := s.(*cluster.Scheme); ok {
		cfg := cs.Config()
		var worst core.Slot
		var sum float64
		ids := cs.ReceiverIDs()
		for _, id := range ids {
			if sd := res.StartDelay[id]; sd > worst {
				worst = sd
			}
			sum += float64(res.StartDelay[id])
		}
		fmt.Fprintf(w, "scheme:        %s\n", s.Name())
		fmt.Fprintf(w, "receivers:     %d (over %d clusters)\n", len(ids), cfg.K)
		fmt.Fprintf(w, "worst delay:   %d slots (receivers only)\n", worst)
		fmt.Fprintf(w, "avg delay:     %.2f slots (receivers only)\n", sum/float64(len(ids)))
		fmt.Fprintf(w, "worst buffer:  %d packets\n", res.WorstBuffer())
		fmt.Fprintf(w, "slots used:    %d\n", res.SlotsUsed)
		return
	}
	fmt.Fprintf(w, "scheme:        %s\n", s.Name())
	fmt.Fprintf(w, "receivers:     %d\n", s.NumReceivers())
	fmt.Fprintf(w, "worst delay:   %d slots\n", res.WorstStartDelay())
	fmt.Fprintf(w, "avg delay:     %.2f slots\n", res.AvgStartDelay())
	fmt.Fprintf(w, "worst buffer:  %d packets\n", res.WorstBuffer())
	maxNb := 0
	for _, nb := range s.Neighbors() {
		if len(nb) > maxNb {
			maxNb = len(nb)
		}
	}
	fmt.Fprintf(w, "max neighbors: %d\n", maxNb)
	fmt.Fprintf(w, "slots used:    %d\n", res.SlotsUsed)
	if d := run.Descriptions(); d > 0 {
		mean, worst := mdc.SystemQuality(res, d)
		fmt.Fprintf(w, "mdc quality:   %.3f mean, %.3f worst node (%d descriptions)\n", mean, worst, d)
	}
	if run.Injector != nil {
		degraded, missing := 0, 0
		for id := 1; id <= s.NumReceivers(); id++ {
			if res.Missing[id] > 0 {
				degraded++
				missing += res.Missing[id]
			}
		}
		fmt.Fprintf(w, "faulted:       %d of %d nodes missing packets (%d packets total)\n",
			degraded, s.NumReceivers(), missing)
	}
}

// sinks bundles the CLI's observability outputs: where to write Prometheus
// metrics, the JSONL trace, and the JSON run report after the run finishes.
type sinks struct {
	metrics     *obs.Metrics
	trace       *obs.JSONLWriter
	traceFile   *os.File
	metricsFile *os.File
	reportFile  *os.File
}

// newSinks opens every requested output up front — a bad path should fail
// before a long simulation, not after — and returns the combined observer
// to attach to the engine (nil when no observability flag was given,
// preserving the engine's no-observer fast path).
func newSinks(metricsOut, traceOut, reportOut string) (*sinks, obs.Observer, error) {
	sk := &sinks{}
	var list []obs.Observer
	if metricsOut != "" || reportOut != "" {
		sk.metrics = obs.NewMetrics()
		list = append(list, sk.metrics)
	}
	var err error
	if metricsOut != "" {
		if sk.metricsFile, err = openOut(metricsOut); err != nil {
			return nil, nil, err
		}
	}
	if reportOut != "" {
		if sk.reportFile, err = openOut(reportOut); err != nil {
			return nil, nil, err
		}
	}
	if traceOut != "" {
		if sk.traceFile, err = openOut(traceOut); err != nil {
			return nil, nil, err
		}
		sk.trace = obs.NewJSONLWriter(sk.traceFile)
		list = append(list, sk.trace)
	}
	return sk, obs.Combine(list...), nil
}

// finish flushes and writes every requested output for a completed run.
// churn, when non-nil, becomes the run report's live-churn section.
func (sk *sinks) finish(s core.Scheme, opt slotsim.Options, res *slotsim.Result, workers int, churn *obs.ChurnSLO) error {
	if sk.trace != nil {
		if err := sk.trace.Flush(); err != nil {
			return err
		}
		if err := closeOut(sk.traceFile); err != nil {
			return err
		}
	}
	if sk.metricsFile != nil {
		if err := sk.metrics.WriteProm(sk.metricsFile, s.Name()); err != nil {
			return err
		}
		if err := closeOut(sk.metricsFile); err != nil {
			return err
		}
	}
	if sk.reportFile != nil {
		rep := slotsim.BuildReport(s, opt, res, sk.metrics, workers)
		rep.Churn = churn
		if err := rep.WriteJSON(sk.reportFile); err != nil {
			return err
		}
		if err := closeOut(sk.reportFile); err != nil {
			return err
		}
	}
	return nil
}

// openOut opens an output path for writing, treating "-" as stdout.
func openOut(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// closeOut closes an output opened by openOut, leaving stdout alone.
func closeOut(f *os.File) error {
	if f != os.Stdout {
		return f.Close()
	}
	return nil
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamsim: "+format+"\n", args...)
	os.Exit(1)
}
