// Command streamsim runs one streaming scheme through the slot-synchronous
// simulator and reports its QoS metrics: per-scheme worst and average
// playback delay, peak buffer occupancy, and neighbor counts.
//
// Examples:
//
//	streamsim -scheme multitree -n 100 -d 3 -construction greedy -mode live
//	streamsim -scheme hypercube -n 100 -d 2
//	streamsim -scheme chain -n 50
//	streamsim -scheme singletree -n 50 -d 2
//	streamsim -scheme cluster -n 20 -k 9 -D 3 -d 4 -tc 5
//
// The -check flag runs the static schedule/mesh verifier (internal/check,
// see STATIC_ANALYSIS.md) as a preflight: the run aborts with precise
// diagnostics if the construction violates the paper's structural
// invariants or closed-form bounds:
//
//	streamsim -scheme multitree -n 100 -d 3 -check
//
// Observability (see OBSERVABILITY.md): any slotsim run can additionally
// emit Prometheus-format metrics, a JSONL event trace, and a JSON run
// report with per-slot buffer-occupancy series, and can serve net/http/pprof
// while running:
//
//	streamsim -scheme multitree -n 255 -d 3 -report-out report.json
//	streamsim -scheme hypercube -n 500 -metrics-out metrics.prom -trace-out events.jsonl
//	streamsim -scheme multitree -n 100000 -parallel -pprof localhost:6060
//
// Fault injection (see FAULTS.md): -faults loads a deterministic fault plan
// (crashes, transient loss, link delay, churn) and replays it against the
// run; -fault-seed overrides the plan's seed. The same plan and seed give a
// bit-identical event stream on the sequential and parallel engines, and
// the same frame losses on the goroutine runtime:
//
//	streamsim -scheme multitree -n 100 -d 3 -faults chaos.plan
//	streamsim -scheme multitree -n 100 -d 3 -faults chaos.plan -fault-seed 7 -parallel
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"streamcast/internal/baseline"
	chk "streamcast/internal/check"
	"streamcast/internal/cluster"
	"streamcast/internal/core"
	"streamcast/internal/faults"
	"streamcast/internal/gossip"
	"streamcast/internal/hypercube"
	"streamcast/internal/multitree"
	"streamcast/internal/obs"
	"streamcast/internal/runtime"
	"streamcast/internal/slotsim"
)

func main() {
	var (
		schemeName   = flag.String("scheme", "multitree", "multitree | hypercube | chain | singletree | gossip | cluster")
		n            = flag.Int("n", 100, "number of receivers (per cluster for -scheme cluster)")
		d            = flag.Int("d", 3, "degree / source capacity d")
		construction = flag.String("construction", "greedy", "multi-tree construction: greedy | structured")
		modeName     = flag.String("mode", "prerecorded", "prerecorded | live | prebuffered")
		packets      = flag.Int("packets", 0, "measurement window in packets (0 = auto)")
		k            = flag.Int("k", 4, "clusters (cluster scheme)")
		dd           = flag.Int("D", 3, "backbone degree D (cluster scheme)")
		tc           = flag.Int("tc", 5, "inter-cluster latency Tc (cluster scheme)")
		doCheck      = flag.Bool("check", false, "statically verify the schedule and mesh (internal/check) before running")
		parallel     = flag.Bool("parallel", false, "use the goroutine-parallel engine")
		workers      = flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
		engineName   = flag.String("engine", "slotsim", "slotsim | runtime (goroutine message passing)")
		seed         = flag.Int64("seed", 1, "seed for the gossip mesh")
		gossipDeg    = flag.Int("gossip-degree", 5, "gossip neighbor-set size")
		metricsOut   = flag.String("metrics-out", "", "write Prometheus-format metrics to this file ('-' for stdout)")
		traceOut     = flag.String("trace-out", "", "write a JSONL event trace to this file ('-' for stdout)")
		reportOut    = flag.String("report-out", "", "write a JSON run report to this file ('-' for stdout)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
		faultsPath   = flag.String("faults", "", "replay this deterministic fault plan (see FAULTS.md)")
		faultSeed    = flag.Int64("fault-seed", 0, "override the fault plan's seed (0 = keep the plan's)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "streamsim: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "streamsim: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	mode := core.PreRecorded
	switch *modeName {
	case "prerecorded":
	case "live":
		mode = core.Live
	case "prebuffered":
		mode = core.LivePreBuffered
	default:
		fatalf("unknown mode %q", *modeName)
	}

	constr := multitree.Greedy
	switch *construction {
	case "greedy":
	case "structured":
		constr = multitree.Structured
	default:
		fatalf("unknown construction %q", *construction)
	}

	if *engineName == "runtime" && (*metricsOut != "" || *traceOut != "" || *reportOut != "") {
		fatalf("-metrics-out/-trace-out/-report-out require the slotsim engine (observability is a slotsim feature)")
	}

	var plan *faults.Plan
	if *faultsPath != "" {
		p, err := faults.Load(*faultsPath)
		check(err)
		if *faultSeed != 0 {
			p.Seed = *faultSeed
		}
		plan = p
		if len(plan.Churn) > 0 && *schemeName != "multitree" {
			fatalf("churn events in %s require -scheme multitree (the dynamic family)", *faultsPath)
		}
	}

	sk, observer := newSinks(*metricsOut, *traceOut, *reportOut)

	if *schemeName == "cluster" {
		runCluster(*k, *dd, *tc, *n, *d, constr, *doCheck, plan, sk, observer)
		return
	}

	var (
		scheme core.Scheme
		opt    slotsim.Options
		extra  core.Slot
		// mkCheckOpt builds the -check preflight options once the
		// measurement window is known; nil falls back to a generic audit
		// derived from the engine options.
		mkCheckOpt func(win core.Packet) chk.Options
	)
	opt.Mode = mode
	switch *schemeName {
	case "multitree":
		var m *multitree.MultiTree
		if plan != nil && len(plan.Churn) > 0 {
			// Replay the churn schedule through the dynamic family and
			// stream the surviving snapshot — the repaired trees are what a
			// post-churn deployment would actually run.
			dy, err := multitree.NewDynamic(*n, *d, false)
			check(err)
			ops, err := faults.ApplyChurn(plan, dy)
			check(err)
			sum := faults.Summarize(ops, *d)
			fmt.Fprintf(os.Stderr,
				"streamsim: churn: %d ops, %d total swaps, worst op %d (bound d²+d = %d), %d members affected\n",
				sum.Ops, sum.TotalSwaps, sum.MaxSwaps, sum.Bound, sum.Affected)
			m, _ = dy.Snapshot()
		} else {
			var err error
			m, err = multitree.New(*n, *d, constr)
			check(err)
		}
		s := multitree.NewScheme(m, mode)
		scheme = s
		extra = core.Slot(m.Height()**d + 4**d + 2)
		mkCheckOpt = func(win core.Packet) chk.Options { return chk.MultiTreeOptions(s, win) }
	case "hypercube":
		h, err := hypercube.New(*n, *d)
		check(err)
		scheme = h
		opt.Mode = core.Live
		lg := 1
		for 1<<lg < *n+1 {
			lg++
		}
		extra = core.Slot((lg+1)*(lg+1) + 4)
		mkCheckOpt = func(win core.Packet) chk.Options { return chk.HypercubeOptions(h, win) }
	case "chain":
		c, err := baseline.NewChain(*n)
		check(err)
		scheme = c
		extra = core.Slot(*n + 4)
	case "singletree":
		st, err := baseline.NewSingleTree(*n, *d)
		check(err)
		scheme = st
		opt.SendCap = st.SendCap
		extra = 40
	case "gossip":
		g, err := gossip.New(*n, *d, *gossipDeg, gossip.PullOldest, *seed)
		check(err)
		scheme = g
		opt.Mode = core.Live
		opt.AllowIncomplete = true
		extra = core.Slot(12**n / *d + 100)
	default:
		fatalf("unknown scheme %q", *schemeName)
	}

	win := core.Packet(*packets)
	if win == 0 {
		win = core.Packet(4 * *d)
	}
	opt.Packets = win
	opt.Slots = core.Slot(int(win)) + extra

	var in *faults.Injector
	if plan != nil {
		var err error
		in, err = faults.NewInjector(plan)
		check(err)
		opt = in.Apply(opt)
		fmt.Fprintf(os.Stderr, "streamsim: faults: %s\n", in.Describe())
	}

	if *doCheck {
		chkOpt := chk.Options{
			Horizon: opt.Slots, Packets: win, Mode: opt.Mode,
			SendCap: opt.SendCap, CheckMesh: true,
			AllowIncomplete: opt.AllowIncomplete,
		}
		if mkCheckOpt != nil {
			chkOpt = mkCheckOpt(win)
		}
		preflight(scheme, chkOpt)
	}

	if *engineName == "runtime" {
		ropt := runtime.Options{Slots: opt.Slots, Packets: opt.Packets, Mode: opt.Mode}
		if in != nil {
			// The runtime sees the same fault plan through its transport:
			// the wrapper applies the identical per-frame verdict coins.
			rcap := 1
			if plan.HasDelay() {
				rcap = 32 // delayed frames land beside the scheduled ones
			}
			ropt.RecvCap = rcap
			ropt.Transport = runtime.NewFaultTransport(
				runtime.NewChanTransport(scheme.NumReceivers(), rcap+4), in)
			ropt.AllowIncomplete = true
			ropt.SkipUnavailable = true
		}
		rres, err := runtime.Execute(scheme, ropt)
		check(err)
		fmt.Printf("scheme:        %s (goroutine runtime)\n", scheme.Name())
		fmt.Printf("receivers:     %d\n", scheme.NumReceivers())
		fmt.Printf("worst delay:   %d slots\n", rres.WorstStart())
		fmt.Printf("worst buffer:  %d packets\n", rres.WorstBuffer())
		fmt.Printf("warmup rebuf:  %d\n", rres.TotalHiccups())
		if in != nil {
			// Played keeps counting past the verification window while the
			// stream continues, so report window completion, not raw totals.
			complete := 0
			for id := 1; id <= scheme.NumReceivers(); id++ {
				if rres.Reports[id].Played >= int(opt.Packets) {
					complete++
				}
			}
			fmt.Printf("faulted:       %d of %d nodes played the full %d-packet window\n",
				complete, scheme.NumReceivers(), opt.Packets)
		}
		return
	}

	opt.Observer = observer
	var (
		res *slotsim.Result
		err error
		wk  int
	)
	if *parallel {
		wk = *workers
		res, err = slotsim.RunParallel(scheme, opt, *workers)
	} else {
		res, err = slotsim.Run(scheme, opt)
	}
	check(err)
	report(scheme, res)
	if in != nil {
		degraded, missing := 0, 0
		for id := 1; id <= scheme.NumReceivers(); id++ {
			if res.Missing[id] > 0 {
				degraded++
				missing += res.Missing[id]
			}
		}
		fmt.Printf("faulted:       %d of %d nodes missing packets (%d packets total)\n",
			degraded, scheme.NumReceivers(), missing)
	}
	sk.finish(scheme, opt, res, wk)
}

func runCluster(k, dd, tc, n, d int, constr multitree.Construction, doCheck bool, plan *faults.Plan, sk *sinks, observer obs.Observer) {
	s, err := cluster.New(cluster.Config{
		K: k, D: dd, Tc: core.Slot(tc), ClusterSize: n,
		Degree: d, Intra: cluster.MultiTree, Construction: constr,
	})
	check(err)
	if doCheck {
		preflight(s, chk.ClusterOptions(s, core.Packet(3*d), core.Slot(40+8*d)))
	}
	opt := s.Options(core.Packet(3*d), core.Slot(40+8*d))
	if plan != nil {
		in, err := faults.NewInjector(plan)
		check(err)
		opt = in.Apply(opt)
		fmt.Fprintf(os.Stderr, "streamsim: faults: %s\n", in.Describe())
	}
	opt.Observer = observer
	res, err := slotsim.Run(s, opt)
	check(err)
	var worst core.Slot
	var sum float64
	ids := s.ReceiverIDs()
	for _, id := range ids {
		if sd := res.StartDelay[id]; sd > worst {
			worst = sd
		}
		sum += float64(res.StartDelay[id])
	}
	fmt.Printf("scheme:        %s\n", s.Name())
	fmt.Printf("receivers:     %d (over %d clusters)\n", k*n, k)
	fmt.Printf("worst delay:   %d slots (receivers only)\n", worst)
	fmt.Printf("avg delay:     %.2f slots (receivers only)\n", sum/float64(len(ids)))
	fmt.Printf("worst buffer:  %d packets\n", res.WorstBuffer())
	fmt.Printf("slots used:    %d\n", res.SlotsUsed)
	sk.finish(s, opt, res, 0)
}

// sinks bundles the CLI's observability outputs: where to write Prometheus
// metrics, the JSONL trace, and the JSON run report after the run finishes.
type sinks struct {
	metrics     *obs.Metrics
	trace       *obs.JSONLWriter
	traceFile   *os.File
	metricsFile *os.File
	reportFile  *os.File
}

// newSinks opens every requested output up front — a bad path should fail
// before a long simulation, not after — and returns the combined observer
// to attach to the engine (nil when no observability flag was given,
// preserving the engine's no-observer fast path).
func newSinks(metricsOut, traceOut, reportOut string) (*sinks, obs.Observer) {
	sk := &sinks{}
	var list []obs.Observer
	if metricsOut != "" || reportOut != "" {
		sk.metrics = obs.NewMetrics()
		list = append(list, sk.metrics)
	}
	if metricsOut != "" {
		sk.metricsFile = openOut(metricsOut)
	}
	if reportOut != "" {
		sk.reportFile = openOut(reportOut)
	}
	if traceOut != "" {
		sk.traceFile = openOut(traceOut)
		sk.trace = obs.NewJSONLWriter(sk.traceFile)
		list = append(list, sk.trace)
	}
	return sk, obs.Combine(list...)
}

// finish flushes and writes every requested output for a completed run.
func (sk *sinks) finish(s core.Scheme, opt slotsim.Options, res *slotsim.Result, workers int) {
	if sk.trace != nil {
		check(sk.trace.Flush())
		closeOut(sk.traceFile)
	}
	if sk.metricsFile != nil {
		check(sk.metrics.WriteProm(sk.metricsFile, s.Name()))
		closeOut(sk.metricsFile)
	}
	if sk.reportFile != nil {
		rep := slotsim.BuildReport(s, opt, res, sk.metrics, workers)
		check(rep.WriteJSON(sk.reportFile))
		closeOut(sk.reportFile)
	}
}

// openOut opens an output path for writing, treating "-" as stdout.
func openOut(path string) *os.File {
	if path == "-" {
		return os.Stdout
	}
	f, err := os.Create(path)
	check(err)
	return f
}

// closeOut closes an output opened by openOut, leaving stdout alone.
func closeOut(f *os.File) {
	if f != os.Stdout {
		check(f.Close())
	}
}

func report(s core.Scheme, res *slotsim.Result) {
	fmt.Printf("scheme:        %s\n", s.Name())
	fmt.Printf("receivers:     %d\n", s.NumReceivers())
	fmt.Printf("worst delay:   %d slots\n", res.WorstStartDelay())
	fmt.Printf("avg delay:     %.2f slots\n", res.AvgStartDelay())
	fmt.Printf("worst buffer:  %d packets\n", res.WorstBuffer())
	maxNb := 0
	for _, nb := range s.Neighbors() {
		if len(nb) > maxNb {
			maxNb = len(nb)
		}
	}
	fmt.Printf("max neighbors: %d\n", maxNb)
	fmt.Printf("slots used:    %d\n", res.SlotsUsed)
}

// preflight runs the static schedule/mesh verifier and aborts with every
// diagnostic when the construction is rejected.
func preflight(s core.Scheme, opt chk.Options) {
	rep, err := chk.Static(s, opt)
	check(err)
	if !rep.OK() {
		for _, is := range rep.Issues {
			fmt.Fprintf(os.Stderr, "streamsim: check: %s\n", is)
		}
		fatalf("static check rejected %s (%d issues)", rep.Scheme, len(rep.Issues))
	}
	fmt.Fprintf(os.Stderr, "streamsim: check: %s ok (worst delay %d, worst buffer %d)\n",
		rep.Scheme, rep.WorstDelay, rep.WorstBuffer)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamsim: "+format+"\n", args...)
	os.Exit(1)
}
