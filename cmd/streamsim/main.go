// Command streamsim runs one streaming scheme through the slot-synchronous
// simulator and reports its QoS metrics: per-scheme worst and average
// playback delay, peak buffer occupancy, and neighbor counts.
//
// Examples:
//
//	streamsim -scheme multitree -n 100 -d 3 -construction greedy -mode live
//	streamsim -scheme hypercube -n 100 -d 2
//	streamsim -scheme chain -n 50
//	streamsim -scheme singletree -n 50 -d 2
//	streamsim -scheme cluster -n 20 -k 9 -D 3 -d 4 -tc 5
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcast/internal/baseline"
	"streamcast/internal/cluster"
	"streamcast/internal/core"
	"streamcast/internal/gossip"
	"streamcast/internal/hypercube"
	"streamcast/internal/multitree"
	"streamcast/internal/runtime"
	"streamcast/internal/slotsim"
)

func main() {
	var (
		schemeName   = flag.String("scheme", "multitree", "multitree | hypercube | chain | singletree | gossip | cluster")
		n            = flag.Int("n", 100, "number of receivers (per cluster for -scheme cluster)")
		d            = flag.Int("d", 3, "degree / source capacity d")
		construction = flag.String("construction", "greedy", "multi-tree construction: greedy | structured")
		modeName     = flag.String("mode", "prerecorded", "prerecorded | live | prebuffered")
		packets      = flag.Int("packets", 0, "measurement window in packets (0 = auto)")
		k            = flag.Int("k", 4, "clusters (cluster scheme)")
		dd           = flag.Int("D", 3, "backbone degree D (cluster scheme)")
		tc           = flag.Int("tc", 5, "inter-cluster latency Tc (cluster scheme)")
		parallel     = flag.Bool("parallel", false, "use the goroutine-parallel engine")
		workers      = flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
		engineName   = flag.String("engine", "slotsim", "slotsim | runtime (goroutine message passing)")
		seed         = flag.Int64("seed", 1, "seed for the gossip mesh")
		gossipDeg    = flag.Int("gossip-degree", 5, "gossip neighbor-set size")
	)
	flag.Parse()

	mode := core.PreRecorded
	switch *modeName {
	case "prerecorded":
	case "live":
		mode = core.Live
	case "prebuffered":
		mode = core.LivePreBuffered
	default:
		fatalf("unknown mode %q", *modeName)
	}

	constr := multitree.Greedy
	switch *construction {
	case "greedy":
	case "structured":
		constr = multitree.Structured
	default:
		fatalf("unknown construction %q", *construction)
	}

	if *schemeName == "cluster" {
		runCluster(*k, *dd, *tc, *n, *d, constr)
		return
	}

	var (
		scheme core.Scheme
		opt    slotsim.Options
		extra  core.Slot
	)
	opt.Mode = mode
	switch *schemeName {
	case "multitree":
		m, err := multitree.New(*n, *d, constr)
		check(err)
		scheme = multitree.NewScheme(m, mode)
		extra = core.Slot(m.Height()**d + 4**d + 2)
	case "hypercube":
		h, err := hypercube.New(*n, *d)
		check(err)
		scheme = h
		opt.Mode = core.Live
		lg := 1
		for 1<<lg < *n+1 {
			lg++
		}
		extra = core.Slot((lg+1)*(lg+1) + 4)
	case "chain":
		c, err := baseline.NewChain(*n)
		check(err)
		scheme = c
		extra = core.Slot(*n + 4)
	case "singletree":
		st, err := baseline.NewSingleTree(*n, *d)
		check(err)
		scheme = st
		opt.SendCap = st.SendCap
		extra = 40
	case "gossip":
		g, err := gossip.New(*n, *d, *gossipDeg, gossip.PullOldest, *seed)
		check(err)
		scheme = g
		opt.Mode = core.Live
		opt.AllowIncomplete = true
		extra = core.Slot(12**n / *d + 100)
	default:
		fatalf("unknown scheme %q", *schemeName)
	}

	win := core.Packet(*packets)
	if win == 0 {
		win = core.Packet(4 * *d)
	}
	opt.Packets = win
	opt.Slots = core.Slot(win) + extra

	if *engineName == "runtime" {
		rres, err := runtime.Execute(scheme, runtime.Options{
			Slots: opt.Slots, Packets: opt.Packets, Mode: opt.Mode,
		})
		check(err)
		fmt.Printf("scheme:        %s (goroutine runtime)\n", scheme.Name())
		fmt.Printf("receivers:     %d\n", scheme.NumReceivers())
		fmt.Printf("worst delay:   %d slots\n", rres.WorstStart())
		fmt.Printf("worst buffer:  %d packets\n", rres.WorstBuffer())
		fmt.Printf("warmup rebuf:  %d\n", rres.TotalHiccups())
		return
	}

	var (
		res *slotsim.Result
		err error
	)
	if *parallel {
		res, err = slotsim.RunParallel(scheme, opt, *workers)
	} else {
		res, err = slotsim.Run(scheme, opt)
	}
	check(err)
	report(scheme, res)
}

func runCluster(k, dd, tc, n, d int, constr multitree.Construction) {
	s, err := cluster.New(cluster.Config{
		K: k, D: dd, Tc: core.Slot(tc), ClusterSize: n,
		Degree: d, Intra: cluster.MultiTree, Construction: constr,
	})
	check(err)
	res, worst, avg, err := s.Run(core.Packet(3*d), core.Slot(40+8*d))
	check(err)
	fmt.Printf("scheme:        %s\n", s.Name())
	fmt.Printf("receivers:     %d (over %d clusters)\n", k*n, k)
	fmt.Printf("worst delay:   %d slots (receivers only)\n", worst)
	fmt.Printf("avg delay:     %.2f slots (receivers only)\n", avg)
	fmt.Printf("worst buffer:  %d packets\n", res.WorstBuffer())
	fmt.Printf("slots used:    %d\n", res.SlotsUsed)
}

func report(s core.Scheme, res *slotsim.Result) {
	fmt.Printf("scheme:        %s\n", s.Name())
	fmt.Printf("receivers:     %d\n", s.NumReceivers())
	fmt.Printf("worst delay:   %d slots\n", res.WorstStartDelay())
	fmt.Printf("avg delay:     %.2f slots\n", res.AvgStartDelay())
	fmt.Printf("worst buffer:  %d packets\n", res.WorstBuffer())
	maxNb := 0
	for _, nb := range s.Neighbors() {
		if len(nb) > maxNb {
			maxNb = len(nb)
		}
	}
	fmt.Printf("max neighbors: %d\n", maxNb)
	fmt.Printf("slots used:    %d\n", res.SlotsUsed)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamsim: "+format+"\n", args...)
	os.Exit(1)
}
