package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamcast/internal/obs"
	"streamcast/internal/slotsim"
	"streamcast/internal/spec"
)

// flagCases gives one representative flag invocation per registered
// scheme family; TestFlagVsScenarioParity fails if a family has no case,
// so a newly registered scheme must be added here and is then covered
// automatically.
var flagCases = map[string][]string{
	"multitree":  {"-scheme", "multitree", "-n", "40", "-d", "3", "-construction", "structured", "-mode", "live"},
	"hypercube":  {"-scheme", "hypercube", "-n", "31", "-d", "1"},
	"chain":      {"-scheme", "chain", "-n", "25"},
	"singletree": {"-scheme", "singletree", "-n", "30", "-d", "2", "-mode", "prebuffered"},
	"cluster":    {"-scheme", "cluster", "-k", "4", "-D", "3", "-tc", "3", "-n", "10", "-d", "2"},
	"gossip":     {"-scheme", "gossip", "-n", "24", "-d", "3", "-gossip-degree", "4", "-seed", "9"},
	"mdc":        {"-scheme", "mdc", "-n", "20", "-d", "2", "-rounds", "4"},
	"session":    {"-scheme", "session", "-n", "20", "-d", "2", "-swaps", "12:5:9"},
	"randreg":    {"-scheme", "randreg", "-n", "24", "-degree", "3", "-randreg-mode", "pull", "-seed", "5"},
}

// translate parses args through the CLI flag set and translates them into
// a scenario.
func translate(t *testing.T, args []string) *spec.Scenario {
	t.Helper()
	c := newCLI(flag.NewFlagSet("streamsim", flag.ContinueOnError))
	if err := c.fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	sc, err := c.scenario()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// capture runs one scenario and returns its stdout bytes.
func capture(t *testing.T, sc *spec.Scenario) []byte {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := runScenario(sc, &out, &errOut); err != nil {
		t.Fatalf("runScenario: %v (stderr: %s)", err, errOut.String())
	}
	return out.Bytes()
}

// fingerprint builds the scenario and runs it with a metrics observer,
// returning the event-stream fingerprint.
func fingerprint(t *testing.T, sc *spec.Scenario) string {
	t.Helper()
	run, err := spec.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	opt := run.Opt
	opt.Observer = met
	if _, err := slotsim.Run(run.Scheme, opt); err != nil {
		t.Fatal(err)
	}
	return met.Fingerprint()
}

// TestFlagVsScenarioParity pins the acceptance criterion: for every
// registered scheme, the flag path and the -scenario path produce the
// same Scenario value, byte-identical stdout, and identical obs
// event-stream fingerprints.
func TestFlagVsScenarioParity(t *testing.T) {
	for _, f := range spec.Families() {
		args, ok := flagCases[f.Name]
		if !ok {
			t.Errorf("family %q has no flag case; add one to cover the new scheme", f.Name)
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			fromFlags := translate(t, args)

			path := filepath.Join(t.TempDir(), "run.scn")
			if err := os.WriteFile(path, []byte(fromFlags.Format()), 0o644); err != nil {
				t.Fatal(err)
			}
			fromFile, err := spec.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fromFlags, fromFile) {
				t.Fatalf("flag and scenario paths disagree:\nflags: %+v\nfile:  %+v", fromFlags, fromFile)
			}

			outA := capture(t, fromFlags)
			outB := capture(t, fromFile)
			if !bytes.Equal(outA, outB) {
				t.Errorf("stdout differs:\n-- flags --\n%s-- scenario --\n%s", outA, outB)
			}
			if fpA, fpB := fingerprint(t, fromFlags), fingerprint(t, fromFile); fpA != fpB {
				t.Errorf("fingerprints differ: %s vs %s", fpA, fpB)
			}
		})
	}
}

// TestFlagTranslationOnlyExplicit checks that defaults never leak into
// the scenario: an unset flag must not become a parameter, so registry
// validation sees exactly what the user typed.
func TestFlagTranslationOnlyExplicit(t *testing.T) {
	sc := translate(t, []string{"-scheme", "hypercube"})
	if len(sc.Params) != 0 {
		t.Fatalf("unset flags leaked into params: %+v", sc.Params)
	}
	if sc.Mode != "" || sc.Engine != "" || sc.Packets != 0 {
		t.Fatalf("unset flags leaked into scenario: %+v", sc)
	}

	// The satellite regressions: these were silently ignored before.
	c := newCLI(flag.NewFlagSet("streamsim", flag.ContinueOnError))
	if err := c.fs.Parse([]string{"-scheme", "hypercube", "-construction", "structured"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.scenario(); err == nil {
		t.Error("-scheme hypercube -construction structured accepted")
	}
	c = newCLI(flag.NewFlagSet("streamsim", flag.ContinueOnError))
	if err := c.fs.Parse([]string{"-tc", "5"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.scenario(); err == nil {
		t.Error("-tc 5 without -scheme cluster accepted")
	}
}

// TestChurnFlagScenario: the churn flags translate into the same scenario
// the churn directive parses to, the two paths print identical reports, and
// the run report carries the live-churn SLO section.
func TestChurnFlagScenario(t *testing.T) {
	fromFlags := translate(t, []string{
		"-scheme", "multitree", "-n", "20", "-d", "3", "-packets", "18",
		"-churn", "poisson", "-churn-rate", "0.6", "-churn-seed", "31",
		"-churn-max", "8", "-churn-policy", "lazy", "-churn-slots", "5..",
	})
	want := &spec.Scenario{
		Scheme: "multitree", Params: map[string]string{"n": "20", "d": "3"}, Packets: 18,
		ChurnKind: "poisson", ChurnRate: 0.6, ChurnSeed: 31, ChurnMax: 8,
		ChurnPolicy: "lazy", ChurnBegin: 5,
	}
	if !reflect.DeepEqual(fromFlags, want) {
		t.Fatalf("flag translation: got %+v\nwant %+v", fromFlags, want)
	}

	path := filepath.Join(t.TempDir(), "run.scn")
	if err := os.WriteFile(path, []byte(fromFlags.Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := spec.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFlags, fromFile) {
		t.Fatalf("flag and scenario paths disagree:\nflags: %+v\nfile:  %+v", fromFlags, fromFile)
	}
	if !bytes.Equal(capture(t, fromFlags), capture(t, fromFile)) {
		t.Error("churn stdout differs between flag and scenario paths")
	}

	// -churn-policy eager is the canonical default: stored empty, like the
	// directive's policy=eager.
	sc := translate(t, []string{"-scheme", "multitree", "-churn", "wave",
		"-churn-rate", "1", "-churn-policy", "eager"})
	if sc.ChurnPolicy != "" {
		t.Fatalf("-churn-policy eager stored as %q, want empty", sc.ChurnPolicy)
	}

	// A malformed window is a flag error, with the shared parser's message.
	c := newCLI(flag.NewFlagSet("streamsim", flag.ContinueOnError))
	if err := c.fs.Parse([]string{"-scheme", "multitree", "-churn", "poisson",
		"-churn-rate", "1", "-churn-slots", "7"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.scenario(); err == nil {
		t.Error("-churn-slots 7 accepted; want lo..hi diagnostic")
	}

	// The run report written by -report-out carries the churn section.
	repPath := filepath.Join(t.TempDir(), "report.json")
	withReport := *want
	withReport.ReportOut = repPath
	capture(t, &withReport)
	f, err := os.Open(repPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Churn == nil {
		t.Fatal("run report has no churn section")
	}
	if rep.Churn.Kind != "poisson" || rep.Churn.Ops == 0 || rep.Churn.NodesMeasured == 0 {
		t.Fatalf("churn section not populated: %+v", rep.Churn)
	}
	if rep.Churn.MaxSwaps > rep.Churn.SwapBound {
		t.Fatalf("report records a bound breach that should have aborted: %+v", rep.Churn)
	}
}

// TestRuntimeEngineParity checks the runtime path is reachable from both
// invocation styles with identical output.
func TestRuntimeEngineParity(t *testing.T) {
	fromFlags := translate(t, []string{"-scheme", "multitree", "-n", "30", "-engine", "runtime"})
	path := filepath.Join(t.TempDir(), "run.scn")
	if err := os.WriteFile(path, []byte(fromFlags.Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := spec.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(capture(t, fromFlags), capture(t, fromFile)) {
		t.Error("runtime-engine stdout differs between flag and scenario paths")
	}
}

// TestListSchemes keeps the registry listing rendering every family.
func TestListSchemes(t *testing.T) {
	var buf bytes.Buffer
	printSchemes(&buf)
	for _, f := range spec.Families() {
		if !bytes.Contains(buf.Bytes(), []byte(f.Name)) {
			t.Errorf("-list-schemes output missing %q", f.Name)
		}
	}
}
