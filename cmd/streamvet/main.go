// Command streamvet is the repository's static-analysis gate: a multichecker
// running the repo-specific analyzers of internal/lint over the module (see
// STATIC_ANALYSIS.md for what each analyzer enforces and how to suppress a
// finding).
//
//	streamvet                     check every package of the module
//	streamvet -analyzers slottypes,obsguard
//	streamvet -list               print the analyzers and exit
//
// Exit status is 1 when any diagnostic (or type-check failure) is reported,
// 0 otherwise, so `make lint` can gate CI on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcast/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "all", "comma-separated analyzer names, or 'all'")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		dir       = flag.String("dir", ".", "directory inside the module to check")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatalf("%v", err)
	}
	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			failed = true
			fmt.Fprintf(os.Stderr, "%v\n", terr)
		}
	}
	for _, d := range lint.RunAnalyzers(pkgs, selected) {
		failed = true
		fmt.Println(d)
	}
	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamvet: "+format+"\n", args...)
	os.Exit(1)
}
