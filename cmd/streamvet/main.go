// Command streamvet is the repository's static-analysis gate: a multichecker
// running the repo-specific analyzers of internal/lint over the module (see
// STATIC_ANALYSIS.md for what each analyzer enforces and how to suppress a
// finding).
//
//	streamvet                     check every package of the module
//	streamvet -analyzers slottypes,obsguard
//	streamvet -list               print the analyzers and exit
//	streamvet -json               machine-readable findings on stdout
//
// Exit status is 1 when any diagnostic (or type-check failure) is reported,
// 0 otherwise, so `make lint` can gate CI on it. With -json the findings are
// emitted as one JSON array of {file,line,col,analyzer,message} records
// (type-check failures appear with analyzer "typecheck"), so editor and CI
// integrations do not have to parse the human format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"streamcast/internal/lint"
)

// finding is the -json record for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		analyzers = flag.String("analyzers", "all", "comma-separated analyzer names, or 'all'")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		dir       = flag.String("dir", ".", "directory inside the module to check")
		asJSON    = flag.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatalf("%v", err)
	}
	// Findings collect into one list so -json emits a single array; the
	// human path streams them in the conventional file:line:col form.
	findings := []finding{}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			findings = append(findings, finding{Analyzer: "typecheck", Message: terr.Error()})
			if !*asJSON {
				fmt.Fprintf(os.Stderr, "%v\n", terr)
			}
		}
	}
	for _, d := range lint.RunAnalyzers(pkgs, selected) {
		findings = append(findings, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		if !*asJSON {
			fmt.Println(d)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamvet: "+format+"\n", args...)
	os.Exit(1)
}
