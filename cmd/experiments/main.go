// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for the recorded
// paper-vs-measured comparison).
//
//	experiments -run all          run everything
//	experiments -run fig4         one experiment
//	experiments -run table1 -csv  CSV instead of aligned text
//	experiments -out results/     additionally write one file per table
//	experiments -run table1 -reports reports/
//	                              also write a JSON run report per simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"streamcast/internal/experiments"
	"streamcast/internal/multitree"
	"streamcast/internal/obs"
)

type runner struct {
	name string
	run  func() (*experiments.Table, error)
}

func main() {
	var (
		which   = flag.String("run", "all", "experiment id or 'all'")
		csv     = flag.Bool("csv", false, "emit CSV")
		out     = flag.String("out", "", "directory to write per-table files into")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		reports = flag.String("reports", "", "directory to write a JSON run report per simulation into")
	)
	flag.Parse()

	fig4Max, fig4Step := 2000, 100
	table1Ns := []int{15, 63, 127, 255, 511, 1023}
	boundNs := []int{20, 50, 100, 250, 500, 1000}
	hcNs := []int{7, 15, 31, 50, 100, 255, 500, 1000, 2000}
	degNs := []int{10, 30, 100, 300, 1000, 3000, 10000}
	baseNs := []int{50, 200, 1000}
	rrNs := []int{100, 1000, 10000}
	rrTrials := 3
	churnOps := 2000
	churnPackets := 200
	churnRates := []float64{0.25, 0.5, 1}
	faultsN := 60
	if *quick {
		fig4Max, fig4Step = 400, 100
		table1Ns = []int{15, 63}
		boundNs = []int{20, 100}
		hcNs = []int{7, 50, 255}
		degNs = []int{10, 100, 1000}
		baseNs = []int{50}
		rrNs = []int{100, 300}
		rrTrials = 2
		churnOps = 300
		churnPackets = 60
		churnRates = []float64{0.5}
		faultsN = 24
	}

	schemesN := 40
	if *quick {
		schemesN = 16
	}

	all := []runner{
		{"schemes", func() (*experiments.Table, error) {
			return experiments.SchemeMatrix(schemesN)
		}},
		{"fig4", func() (*experiments.Table, error) {
			return experiments.Figure4(fig4Max, fig4Step, []int{2, 3, 4, 5}, multitree.Greedy)
		}},
		{"table1", func() (*experiments.Table, error) {
			return experiments.Table1(table1Ns, 3)
		}},
		{"cluster", func() (*experiments.Table, error) {
			return experiments.ClusterExperiment(9, 3, 4, 30, []int{2, 5, 10, 20, 40})
		}},
		{"bounds", func() (*experiments.Table, error) {
			return experiments.DelayBounds(boundNs, []int{2, 3, 4, 5})
		}},
		{"hcavg", func() (*experiments.Table, error) {
			return experiments.HypercubeAvgDelay(hcNs)
		}},
		{"degree", func() (*experiments.Table, error) {
			return experiments.DegreeOptimization(degNs, 8)
		}},
		{"churn", func() (*experiments.Table, error) {
			return experiments.ChurnSurvival(50, 3, churnPackets, churnRates, 1)
		}},
		{"baselines", func() (*experiments.Table, error) {
			return experiments.Baselines(baseNs)
		}},
		{"livemodes", func() (*experiments.Table, error) {
			return experiments.LiveModes([]int{20, 100, 500}, 3)
		}},
		{"delaydist", func() (*experiments.Table, error) {
			return experiments.DelayDistribution(baseNs, 3)
		}},
		{"churncmp", func() (*experiments.Table, error) {
			return experiments.ChurnComparison(50, 3, churnOps, 1)
		}},
		{"churnimpact", func() (*experiments.Table, error) {
			return experiments.ChurnImpact(40, 3, churnOps/4, 1)
		}},
		{"unstructured", func() (*experiments.Table, error) {
			return experiments.StructuredVsUnstructured(baseNs, 3)
		}},
		{"midstream", func() (*experiments.Table, error) {
			return experiments.MidStreamSwaps(41, 3)
		}},
		{"mdc", func() (*experiments.Table, error) {
			return experiments.MDCGracefulDegradation(60, 4, []float64{0.005, 0.02, 0.1}, 1)
		}},
		{"faults", func() (*experiments.Table, error) {
			return experiments.FaultDegradation(faultsN, 3, 11)
		}},
		{"randreg", func() (*experiments.Table, error) {
			return experiments.RandRegFrontier(rrNs, 3, rrTrials, 1)
		}},
	}

	if *reports != "" {
		if err := os.MkdirAll(*reports, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	ran := false
	for _, r := range all {
		if *which != "all" && *which != r.name {
			continue
		}
		ran = true
		if *reports != "" {
			seq := 0
			name := r.name
			experiments.SetReportSink(func(rep *obs.RunReport) {
				seq++
				writeReport(rep, filepath.Join(*reports, fmt.Sprintf("%s-%03d.json", name, seq)))
			})
		}
		tab, err := r.run()
		experiments.SetReportSink(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if *csv {
			tab.CSV(os.Stdout)
		} else {
			tab.Render(os.Stdout)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*out, r.name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			tab.CSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *which)
		os.Exit(1)
	}
}

// writeReport saves one JSON run report, exiting on any I/O failure.
func writeReport(rep *obs.RunReport, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
